"""Property-based cross-validation of MineTopkRGS against the oracle.

The naive oracle enumerates every closed rule group by brute force and
sorts; MineTopkRGS must produce per-row lists with exactly the same
(confidence, support) profile for every row, any engine, any flag
combination.  Tie *identity* may differ (the paper leaves tie order to
discovery order), so profiles, not antecedents, are compared.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.naive_topk import naive_topk
from repro.core.topk_miner import mine_topk
from repro.data.dataset import DiscretizedDataset, Item


@st.composite
def small_datasets(draw):
    n_rows = draw(st.integers(4, 9))
    n_items = draw(st.integers(3, 8))
    rows = []
    for _ in range(n_rows):
        row = draw(
            st.sets(st.integers(0, n_items - 1), min_size=1, max_size=n_items)
        )
        rows.append(frozenset(row))
    labels = draw(
        st.lists(st.integers(0, 1), min_size=n_rows, max_size=n_rows).filter(
            lambda ls: 0 in ls and 1 in ls
        )
    )
    items = [
        Item(i, i, f"g{i}", float("-inf"), float("inf"))
        for i in range(n_items)
    ]
    return DiscretizedDataset(rows, labels, items)


def profiles(per_row):
    return {
        row: [(g.confidence, g.support) for g in groups]
        for row, groups in per_row.items()
    }


@given(small_datasets(), st.integers(1, 3), st.integers(1, 3))
@settings(max_examples=60, deadline=None)
def test_miner_matches_oracle(dataset, minsup, k):
    expected = profiles(naive_topk(dataset, 1, minsup, k))
    actual = profiles(mine_topk(dataset, 1, minsup, k).per_row)
    assert actual == expected


@given(small_datasets(), st.integers(1, 2))
@settings(max_examples=30, deadline=None)
def test_all_engines_match_oracle(dataset, k):
    expected = profiles(naive_topk(dataset, 0, 1, k))
    for engine in ("bitset", "table", "tree"):
        actual = profiles(mine_topk(dataset, 0, 1, k, engine=engine).per_row)
        assert actual == expected, engine


@given(small_datasets())
@settings(max_examples=30, deadline=None)
def test_flag_combinations_match_oracle(dataset):
    expected = profiles(naive_topk(dataset, 1, 1, 2))
    for init in (True, False):
        for dynamic in (True, False):
            result = mine_topk(
                dataset, 1, 1, 2,
                initialize_single_items=init,
                dynamic_minsup=dynamic,
            )
            assert profiles(result.per_row) == expected


@given(small_datasets(), st.integers(1, 4))
@settings(max_examples=30, deadline=None)
def test_returned_groups_are_real(dataset, k):
    result = mine_topk(dataset, 1, 1, k)
    class_mask = dataset.class_mask(1)
    for row, groups in result.per_row.items():
        for group in groups:
            rows = dataset.support_set(group.antecedent)
            assert rows == group.row_set
            from repro.core.bitset import popcount

            assert popcount(rows & class_mask) == group.support
