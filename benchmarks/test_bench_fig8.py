"""Figure 8 benchmark: the gene-rank/occurrence analysis on PC data.

Times the full analysis (top-1 mining, FindLB extraction, chi-square
ranking) and asserts the figure's shape: high-ranked genes dominate the
rule occurrences, but low-ranked genes participate too.
"""

from repro.analysis.gene_ranking import (
    gene_chi_square_scores,
    gene_entropy_scores,
    item_scores,
    rank_genes,
)
from repro.analysis.significance import gene_usage
from repro.core.lower_bounds import find_lower_bounds_batch
from repro.core.topk_miner import mine_topk, relative_minsup


def analyse(train_items, nl=10):
    scores = item_scores(train_items, gene_entropy_scores(train_items))
    rules = []
    for class_id in range(train_items.n_classes):
        minsup = relative_minsup(train_items, class_id, 0.7)
        groups = mine_topk(train_items, class_id, minsup, k=1).unique_groups()
        for bounds in find_lower_bounds_batch(
            train_items, groups, nl=nl, item_scores=scores
        ).values():
            rules.extend(bounds)
    usage = gene_usage(train_items, rules)
    ranks = rank_genes(gene_chi_square_scores(train_items))
    return usage, ranks


def test_fig8_analysis(benchmark, pc_benchmark):
    usage, ranks = benchmark(lambda: analyse(pc_benchmark.train_items))
    assert usage
    benchmark.extra_info.update(
        {"rule_genes": len(usage), "ranked_genes": len(ranks)}
    )


def test_fig8_shape_high_rank_dominates(pc_benchmark):
    """Most rule occurrences come from well-ranked genes (paper: the
    frequent rule genes are 'ranked 700th and above' of 1554)."""
    usage, ranks = analyse(pc_benchmark.train_items)
    total = sum(usage.values())
    n_genes = len(ranks)
    top_half = sum(
        count
        for gene, count in usage.items()
        if ranks.get(gene, n_genes) <= n_genes / 2
    )
    assert top_half / total >= 0.5


def test_fig8_shape_low_rank_tail_exists(pc_benchmark):
    """And yet some low-ranked genes do appear in the deployed rules."""
    usage, ranks = analyse(pc_benchmark.train_items)
    n_genes = len(ranks)
    low_ranked = [
        gene
        for gene in usage
        if ranks.get(gene, 0) > n_genes / 2
    ]
    assert low_ranked, "expected a tail of low-ranked rule genes"
