"""Row enumeration engines and the shared depth-first driver.

All miners in this package (MineTopkRGS and the FARMER baselines) are a
depth-first walk of the row enumeration tree of Figure 2.  What differs is

* the *policy* — which subtrees are pruned and which discovered rule
  groups are kept (top-k dynamic thresholds vs. FARMER's static ones), and
* the *engine* — the data structure used to project transposed tables and
  count row frequencies at each node.

Three engines are provided:

``bitset``
    Item support sets are integer bitsets over row positions; closures are
    intersections and frequency tests are bit probes.  The fastest engine
    and the default for classifier construction and tests.

``table``
    Faithful to the original FARMER implementation: the projected
    transposed table at each node is an explicit list of tuples (item,
    ascending row list) and frequencies are counted by scanning it.  This
    is the paper's "FARMER" cost profile.

``tree``
    The prefix-tree representation of Section 4.2 (see
    :mod:`repro.core.prefix_tree`), the paper's "FARMER+prefix" /
    MineTopkRGS structure: identical tuple prefixes share trie paths so a
    frequency scan touches each shared path once.

All engines visit exactly the same closed nodes in the same order and call
the same policy hooks, so outputs are identical; only the constant factors
differ.  That property is what lets the Figure 6 benchmarks attribute
speedups to the prefix tree versus the top-k pruning, and it is verified
by the cross-engine tests.
"""

from __future__ import annotations

import time
from bisect import bisect_left
from dataclasses import dataclass
from typing import Optional, Protocol, Sequence

from ..errors import MiningBudgetExceeded
from .bitset import bit, iter_indices, mask_below, popcount
from .prefix_tree import PrefixTree
from .view import MiningView

__all__ = ["SearchPolicy", "MinerStats", "run_enumeration", "ENGINES"]

ENGINES = ("bitset", "table", "tree")


class _CancelToken(Protocol):
    """Cooperative-cancellation token (``threading.Event`` qualifies)."""

    def is_set(self) -> bool: ...


class SearchPolicy(Protocol):
    """Miner-specific pruning and collection logic.

    ``threshold_bits`` passed to the pruning hooks is the position bitset
    of consequent-class rows whose top-k lists the subtree could still
    improve (``X_p ∪ R_p`` of Lemma 3.2); static-threshold policies may
    ignore it.
    """

    @property
    def minsup(self) -> int:
        """Current absolute minimum support (may grow dynamically)."""
        ...

    def loose_prunable(
        self, x_p: int, x_n: int, r_p: int, r_n: int, threshold_bits: int
    ) -> bool:
        """Step 9: prune using bounds available before scanning the table."""
        ...

    def tight_prunable(
        self, x_p: int, x_n: int, m_p: int, r_n: int, threshold_bits: int
    ) -> bool:
        """Step 11: prune using the scanned ``m_p`` bound."""
        ...

    def emit(
        self, items: Sequence[int], position_bits: int, x_p: int, x_n: int
    ) -> None:
        """Step 13: offer the closed rule group found at this node."""
        ...


@dataclass
class MinerStats:
    """Counters describing one enumeration run."""

    nodes_visited: int = 0
    groups_emitted: int = 0
    loose_pruned: int = 0
    tight_pruned: int = 0
    backward_pruned: int = 0
    elapsed_seconds: float = 0.0
    engine: str = "bitset"
    completed: bool = True

    def as_dict(self) -> dict:
        return {
            "nodes_visited": self.nodes_visited,
            "groups_emitted": self.groups_emitted,
            "loose_pruned": self.loose_pruned,
            "tight_pruned": self.tight_pruned,
            "backward_pruned": self.backward_pruned,
            "elapsed_seconds": self.elapsed_seconds,
            "engine": self.engine,
            "completed": self.completed,
        }


class _Budget:
    """Node-count, wall-clock and cancellation limits shared by all engines.

    ``cancel`` is any object with an ``is_set()`` method (typically a
    :class:`threading.Event`); it is polled on the same 64-node stride as
    the deadline so a long-running mine can be stopped cooperatively from
    another thread (the service job queue relies on this).
    """

    def __init__(
        self,
        stats: MinerStats,
        node_budget: Optional[int],
        time_budget: Optional[float],
        cancel: Optional["_CancelToken"] = None,
    ) -> None:
        self.stats = stats
        self.node_budget = node_budget
        self.deadline = (
            time.monotonic() + time_budget if time_budget is not None else None
        )
        self.cancel = cancel

    def charge_node(self) -> None:
        self.stats.nodes_visited += 1
        if (
            self.node_budget is not None
            and self.stats.nodes_visited > self.node_budget
        ):
            self.stats.completed = False
            raise MiningBudgetExceeded(
                f"node budget {self.node_budget} exceeded", self.stats
            )
        if self.stats.nodes_visited % 64 == 0:
            if self.deadline is not None and time.monotonic() > self.deadline:
                self.stats.completed = False
                raise MiningBudgetExceeded("time budget exceeded", self.stats)
            if self.cancel is not None and self.cancel.is_set():
                self.stats.completed = False
                raise MiningBudgetExceeded("mining cancelled", self.stats)


def run_enumeration(
    view: MiningView,
    policy: SearchPolicy,
    engine: str = "bitset",
    node_budget: Optional[int] = None,
    time_budget: Optional[float] = None,
    cancel: Optional["_CancelToken"] = None,
) -> MinerStats:
    """Depth-first walk of the row enumeration tree under ``policy``.

    Args:
        view: prepared dataset view (ordering, frequent items).
        policy: pruning/collection logic (top-k or FARMER style).
        engine: one of :data:`ENGINES`.
        node_budget: abort with :class:`MiningBudgetExceeded` after this
            many enumeration nodes.
        time_budget: abort after this many wall-clock seconds.
        cancel: optional cancellation token (anything with ``is_set()``,
            e.g. a :class:`threading.Event`); when set mid-run the walk
            aborts like an exhausted budget.

    Returns:
        The :class:`MinerStats` of the completed run.  On budget overrun
        the exception carries the partial stats instead.
    """
    stats = MinerStats(engine=engine)
    budget = _Budget(stats, node_budget, time_budget, cancel)
    start = time.monotonic()
    try:
        if engine == "bitset":
            _walk_bitset(view, policy, stats, budget)
        elif engine == "table":
            _walk_table(view, policy, stats, budget)
        elif engine == "tree":
            _walk_tree(view, policy, stats, budget)
        else:
            raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
    except MiningBudgetExceeded as overrun:
        # Policies may raise their own budget errors (e.g. a group cap);
        # make sure the run's stats travel with the exception either way.
        stats.completed = False
        if overrun.stats is None:
            overrun.stats = stats
        raise
    finally:
        stats.elapsed_seconds = time.monotonic() - start
    return stats


def _split_counts(view: MiningView, bits: int) -> tuple[int, int]:
    """(positive, negative) row counts of a position bitset."""
    positive = popcount(bits & view.positive_mask)
    return positive, popcount(bits) - positive


# ---------------------------------------------------------------------------
# bitset engine
# ---------------------------------------------------------------------------


def _walk_bitset(
    view: MiningView, policy: SearchPolicy, stats: MinerStats, budget: _Budget
) -> None:
    item_rows = view.item_rows
    row_items = view.row_items
    positive_mask = view.positive_mask

    def recurse(x_bits: int, items: Sequence[int], cand_bits: int) -> None:
        remaining = cand_bits
        for r in iter_indices(cand_bits):
            budget.charge_node()
            remaining &= ~bit(r)
            seed_bits = x_bits | bit(r)
            seed_p, seed_n = _split_counts(view, seed_bits)
            r_p, r_n = _split_counts(view, remaining)
            threshold_bits = (seed_bits | remaining) & positive_mask
            if policy.loose_prunable(seed_p, seed_n, r_p, r_n, threshold_bits):
                stats.loose_pruned += 1
                continue
            present = row_items[r]
            new_items = [i for i in items if i in present]
            if not new_items:
                continue
            closure = item_rows[new_items[0]]
            union = closure
            for item in new_items[1:]:
                rows = item_rows[item]
                closure &= rows
                union |= rows
            # Backward pruning (step 7): a row before r outside X containing
            # I(X ∪ {r}) means this group was found in an earlier subtree.
            if closure & mask_below(r) & ~x_bits:
                stats.backward_pruned += 1
                continue
            new_cand = remaining & union & ~closure
            x_p, x_n = _split_counts(view, closure)
            m_p = popcount(new_cand & positive_mask)
            new_r_n = popcount(new_cand) - m_p
            new_threshold = (closure | new_cand) & positive_mask
            if policy.tight_prunable(x_p, x_n, m_p, new_r_n, new_threshold):
                stats.tight_pruned += 1
                continue
            stats.groups_emitted += 1
            policy.emit(new_items, closure, x_p, x_n)
            if new_cand:
                recurse(closure, new_items, new_cand)

    all_rows = mask_below(view.n_rows)
    recurse(0, list(view.frequent_items), all_rows)


# ---------------------------------------------------------------------------
# table engine (FARMER-style projected transposed tables)
# ---------------------------------------------------------------------------


def _walk_table(
    view: MiningView, policy: SearchPolicy, stats: MinerStats, budget: _Budget
) -> None:
    positive_mask = view.positive_mask
    n_positive = view.n_positive

    # The root transposed table: one tuple per frequent item, carrying the
    # item's full ascending row list.  Projection passes tuple references
    # down unchanged; the scan position is implied by r.
    root_tuples = [
        (item, sorted(iter_indices(view.item_rows[item])))
        for item in view.frequent_items
    ]

    def recurse(
        x_bits: int,
        x_p: int,
        x_n: int,
        tuples: list[tuple[int, list[int]]],
        cand: list[int],
    ) -> None:
        for index, r in enumerate(cand):
            budget.charge_node()
            rest = cand[index + 1 :]
            r_p = sum(1 for row in rest if row < n_positive)
            r_n = len(rest) - r_p
            seed_p = x_p + (1 if r < n_positive else 0)
            seed_n = x_n + (1 if r >= n_positive else 0)
            threshold_bits = ((x_bits | bit(r)) & positive_mask) | sum(
                bit(row) for row in rest if row < n_positive
            )
            if policy.loose_prunable(seed_p, seed_n, r_p, r_n, threshold_bits):
                stats.loose_pruned += 1
                continue
            # Project: keep tuples whose row list contains r (bisect scan,
            # the authentic per-node cost of the pointer-based FARMER).
            kept = []
            for item, rows in tuples:
                position = bisect_left(rows, r)
                if position < len(rows) and rows[position] == r:
                    kept.append((item, rows))
            if not kept:
                continue
            # Count frequencies over the kept tuples' full row lists.
            freq: dict[int, int] = {}
            for _item, rows in kept:
                for row in rows:
                    freq[row] = freq.get(row, 0) + 1
            n_tuples = len(kept)
            closure_rows = [row for row, count in freq.items() if count == n_tuples]
            closure = 0
            backward = False
            for row in closure_rows:
                if row < r and not x_bits >> row & 1:
                    backward = True
                    break
                closure |= bit(row)
            if backward:
                stats.backward_pruned += 1
                continue
            new_cand = sorted(
                row
                for row, count in freq.items()
                if row > r and count < n_tuples
            )
            new_x_p, new_x_n = _split_counts(view, closure)
            m_p = sum(1 for row in new_cand if row < n_positive)
            new_r_n = len(new_cand) - m_p
            new_threshold = (closure & positive_mask) | sum(
                bit(row) for row in new_cand if row < n_positive
            )
            if policy.tight_prunable(new_x_p, new_x_n, m_p, new_r_n, new_threshold):
                stats.tight_pruned += 1
                continue
            stats.groups_emitted += 1
            policy.emit([item for item, _rows in kept], closure, new_x_p, new_x_n)
            if new_cand:
                recurse(closure, new_x_p, new_x_n, kept, new_cand)

    recurse(0, 0, 0, root_tuples, list(range(view.n_rows)))


# ---------------------------------------------------------------------------
# tree engine (prefix-tree projected transposed tables, Section 4.2)
# ---------------------------------------------------------------------------


def _walk_tree(
    view: MiningView, policy: SearchPolicy, stats: MinerStats, budget: _Budget
) -> None:
    positive_mask = view.positive_mask
    n_positive = view.n_positive
    item_rows = view.item_rows

    root_tree = PrefixTree.from_items(
        (item, sorted(iter_indices(view.item_rows[item])))
        for item in view.frequent_items
    )

    def recurse(x_bits: int, x_p: int, x_n: int, tree: PrefixTree) -> None:
        # Rows absorbed into X by a closure step remain in the projected
        # tree's paths; they are not extension candidates.
        cand = [row for row in tree.rows_present() if not x_bits >> row & 1]
        for index, r in enumerate(cand):
            budget.charge_node()
            rest = cand[index + 1 :]
            r_p = sum(1 for row in rest if row < n_positive)
            r_n = len(rest) - r_p
            seed_p = x_p + (1 if r < n_positive else 0)
            seed_n = x_n + (1 if r >= n_positive else 0)
            threshold_bits = ((x_bits | bit(r)) & positive_mask) | sum(
                bit(row) for row in rest if row < n_positive
            )
            if policy.loose_prunable(seed_p, seed_n, r_p, r_n, threshold_bits):
                stats.loose_pruned += 1
                continue
            projected = tree.project(r)
            if projected.n_items == 0:
                continue
            new_items = projected.all_items()
            # Closure and backward check use the full item support sets;
            # the projected tree only keeps rows after r (Section 3's
            # projected transposed table), so earlier rows must be probed
            # against the original supports.
            closure = item_rows[new_items[0]]
            for item in new_items[1:]:
                closure &= item_rows[item]
            if closure & mask_below(r) & ~x_bits:
                stats.backward_pruned += 1
                continue
            freq = projected.row_frequencies()
            new_cand_rows = [
                row for row in freq if not closure >> row & 1
            ]
            new_x_p, new_x_n = _split_counts(view, closure)
            m_p = sum(1 for row in new_cand_rows if row < n_positive)
            new_r_n = len(new_cand_rows) - m_p
            new_threshold = (closure & positive_mask) | sum(
                bit(row) for row in new_cand_rows if row < n_positive
            )
            if policy.tight_prunable(new_x_p, new_x_n, m_p, new_r_n, new_threshold):
                stats.tight_pruned += 1
                continue
            stats.groups_emitted += 1
            policy.emit(new_items, closure, new_x_p, new_x_n)
            if new_cand_rows:
                recurse(closure, new_x_p, new_x_n, projected)

    recurse(0, 0, 0, root_tree)
