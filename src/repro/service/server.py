"""The serving layer: an embeddable facade plus a threaded HTTP API.

Two levels, so every future scaling PR has a seam to plug into:

* :class:`RuleService` — the transport-free facade.  It owns the model
  registry, the content-addressed mining cache, the mining job queue,
  per-model classify micro-batchers and the telemetry registry, and
  exposes plain-dict operations (``classify``, ``submit_mine``,
  ``job_status``...).  Embed it directly in another process, or put any
  transport in front of it.
* :class:`ReproServer` — a stdlib ``ThreadingHTTPServer`` speaking JSON
  over the endpoints below.  Started by ``repro serve``.

HTTP surface::

    GET    /healthz            liveness + uptime
    GET    /metrics            counters, latencies, cache/jobs/batching
    GET    /models             registered model versions
    POST   /models             register {"name", "model", ["pipeline"]}
    POST   /classify           {"model", ["version"], "rows" | "values"}
    POST   /mine               async mining; returns job id or cached hit
    GET    /jobs/<id>          job status (+ result when finished)
    DELETE /jobs/<id>          cooperative cancellation

A ``/mine`` request is answered from cache when an identical
``(dataset fingerprint, consequent, minsup, k, engine)`` run already
finished, and deduplicated onto the in-flight job when one is still
running — repeated interactive sweeps over one dataset (the paper's own
use case) pay mining cost once.  The optional ``backend`` field selects
the bitset-operations backend (:mod:`repro.core.backends`); it is
deliberately *not* part of the cache key because results are
bit-identical across backends.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

import numpy as np

from ..core.backends import (
    AUTO_BACKEND,
    auto_backend_stats,
    available_backends,
)
from ..core.bitset import iter_indices
from ..core.enumeration import ENGINES
from ..core.hybrid import (
    AUTO_STRATEGY,
    STRATEGIES,
    auto_strategy_stats,
    plan_auto_strategy,
)
from ..core.topk_miner import TopkResult, mine_topk, relative_minsup
from ..data.dataset import GeneExpressionDataset
from ..data.discretize import EntropyDiscretizer
from ..data.loaders import discretized_from_payload
from ..parallel import AUTO_JOBS, pool_stats
from .batching import MicroBatcher
from .cache import MiningCache, dataset_fingerprint, mining_key
from .jobs import DONE, FAILED, QUEUED, RUNNING, JobQueue
from .registry import ModelRecord, ModelRegistry
from .store import JobStore
from .telemetry import BATCH_SIZE_BUCKETS, Telemetry

__all__ = ["RuleService", "ReproServer", "ServiceError", "topk_result_to_payload"]


class ServiceError(Exception):
    """A client-visible request error with an HTTP status code."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


def topk_result_to_payload(result: TopkResult) -> dict:
    """JSON-safe rendering of a mining result."""
    return {
        "consequent": result.consequent,
        "minsup": result.minsup,
        "k": result.k,
        "completed": result.stats.completed,
        "degraded": result.stats.degraded,
        "stats": result.stats.as_dict(),
        "n_unique_groups": len(result.unique_groups()),
        "per_row": {
            str(row): [
                {
                    "antecedent": sorted(group.antecedent),
                    "support": group.support,
                    "confidence": group.confidence,
                    "rows": list(iter_indices(group.row_set)),
                }
                for group in groups
            ]
            for row, groups in sorted(result.per_row.items())
        },
    }


def _validate_budget(body: dict, name: str, default, integral: bool):
    """Validate an optional mining-budget field of a ``/mine`` body.

    A missing field falls back to ``default``; an explicit JSON ``null``
    disables the budget.  Anything non-numeric (or non-positive) is
    rejected here with a 400 instead of reaching ``mine_topk`` on the
    worker thread and surfacing as a FAILED job with a traceback.
    """
    if name not in body:
        return default
    value = body[name]
    if value is None:
        return None
    kinds = "an integer" if integral else "a number"
    if isinstance(value, bool) or not isinstance(
        value, int if integral else (int, float)
    ):
        raise ServiceError(400, f"'{name}' must be {kinds} or null")
    if value <= 0:
        raise ServiceError(400, f"'{name}' must be positive, got {value}")
    return value if integral else float(value)


class RuleService:
    """Transport-free serving facade over registry, cache and job queue.

    Args:
        models_dir: when given, the registry persists there and warm
            starts from it.
        cache_bytes: byte bound of the mining cache.
        mining_workers: worker threads of the mining job queue.
        mine_jobs: worker *processes* each mining job may use (the cap
            for per-request ``n_jobs``).  1 keeps mining in the job
            thread; more hands the enumeration to the warm process pool
            of :mod:`repro.parallel`, so CPU-bound mining no longer
            serializes behind the GIL; ``"auto"`` lets the adaptive
            planner choose per workload.  Results are bit-identical
            either way, so the mining cache key is unaffected.
        node_budget / time_budget: default per-job mining budgets
            (overridable per request).
        batch_rows / batch_delay: micro-batching knobs for classify.
        store_path: when given, a :class:`~repro.service.store.JobStore`
            (SQLite, WAL) makes mining jobs and results durable: jobs
            that were queued or running when the previous process died
            are re-enqueued on construction under their original ids,
            and finished results answer identical re-mines across
            restarts.
    """

    def __init__(
        self,
        models_dir: Optional[str] = None,
        cache_bytes: int = 64 * 1024 * 1024,
        mining_workers: int = 2,
        mine_jobs: int = 1,
        node_budget: Optional[int] = 2_000_000,
        time_budget: Optional[float] = 300.0,
        batch_rows: int = 256,
        batch_delay: float = 0.002,
        store_path: Optional[str] = None,
    ) -> None:
        if mine_jobs != AUTO_JOBS and mine_jobs < 1:
            raise ValueError(f"mine_jobs must be >= 1 or 'auto', got {mine_jobs}")
        self.registry = ModelRegistry(models_dir)
        self.cache = MiningCache(cache_bytes)
        self.store = JobStore(store_path) if store_path is not None else None
        self.jobs = JobQueue(
            workers=mining_workers,
            start_id=(self.store.max_job_number() + 1) if self.store else 1,
            observer=self.store.apply_snapshot if self.store else None,
        )
        self.mine_jobs = mine_jobs
        self.telemetry = Telemetry()
        self.node_budget = node_budget
        self.time_budget = time_budget
        self.batch_rows = batch_rows
        self.batch_delay = batch_delay
        self.started_at = time.time()
        self._batchers: dict[tuple[str, int], MicroBatcher] = {}
        self._inflight: dict[str, str] = {}  # mining key -> active job id
        self._lock = threading.Lock()
        self._closed = False
        if self.store is not None:
            self._recover_jobs()

    # -- health / metrics --------------------------------------------------

    def health(self) -> dict:
        """Readiness payload: queue pressure and recovery state.

        Beyond liveness, a load balancer (or an operator's curl) can see
        how much mining work is queued and in flight, whether the warm
        miner pool has been healing or degrading, and whether jobs are
        durable.  The HTTP front ends add their own admission state on
        top (the async server reports — and 503s — while shedding).
        """
        by_status = self.jobs.describe()["by_status"]
        stats = pool_stats()
        payload = {
            "status": "ok",
            "uptime_seconds": time.time() - self.started_at,
            "models": len(self.registry),
            "queue_depth": by_status.get(QUEUED, 0),
            "inflight_mines": by_status.get(RUNNING, 0),
            "pool": {
                "shard_retries": stats.get("shard_retries", 0),
                "pool_restarts_on_failure": stats.get(
                    "pool_restarts_on_failure", 0
                ),
                "serial_degradations": stats.get("serial_degradations", 0),
            },
            "durable": self.store is not None,
            "shedding": False,
        }
        if self.store is not None:
            payload["store"] = self.store.stats()
        return payload

    def metrics(self) -> dict:
        with self._lock:
            batching = {
                f"{name}@v{version}": batcher.stats()
                for (name, version), batcher in sorted(self._batchers.items())
            }
        # The warm miner pool, the execution planner and the crash-
        # recovery supervisor live in repro.parallel, shared by every
        # embedder of this service; sample their counters into gauges
        # atomically at scrape time (shard_retries,
        # pool_restarts_on_failure and serial_degradations ride along —
        # the operator's first sign that workers are being killed).
        self.telemetry.set_gauges(pool_stats())
        # How often backend="auto" resolved to each backend since process
        # start — the /metrics face of the planner's honesty contract
        # (bench output carries the same counts as ``chose_backend``).
        self.telemetry.set_gauges({
            f"auto_backend_{name}": count
            for name, count in auto_backend_stats().items()
        })
        # Same honesty contract for strategy="auto" (direct vs hybrid).
        self.telemetry.set_gauges({
            f"auto_strategy_{name}": count
            for name, count in auto_strategy_stats().items()
        })
        extra = {
            "cache": self.cache.stats(),
            "jobs": self.jobs.describe(),
            "batching": batching,
        }
        if self.store is not None:
            extra["store"] = self.store.stats()
        return self.telemetry.snapshot(extra=extra)

    # -- models ------------------------------------------------------------

    def register_model(self, body: dict) -> dict:
        name = body.get("name")
        payload = body.get("model")
        if not isinstance(name, str) or not isinstance(payload, dict):
            raise ServiceError(
                400, "body must carry 'name' (string) and 'model' (object)"
            )
        try:
            record = self.registry.register_payload(
                name, payload, pipeline=body.get("pipeline")
            )
        except (ValueError, KeyError) as error:
            raise ServiceError(400, f"bad model payload: {error}")
        self.telemetry.increment("models_registered")
        return record.describe()

    def list_models(self) -> dict:
        return {"models": self.registry.describe()}

    # -- classify ----------------------------------------------------------

    def classify(self, body: dict) -> dict:
        start = time.monotonic()
        record, rows = self.resolve_classify(body)
        pairs = self._batcher(record).submit(rows)
        payload = self.classify_payload(record, pairs)
        self.record_classify(len(rows), time.monotonic() - start)
        return payload

    def resolve_classify(
        self, body: dict
    ) -> tuple[ModelRecord, list[frozenset[int]]]:
        """Validate a ``/classify`` body into ``(record, itemized rows)``.

        Shared by both front ends: the threaded server feeds the rows to
        the blocking :class:`MicroBatcher`, the asyncio server to its
        event-loop coalescer.
        """
        name = body.get("model")
        if not isinstance(name, str):
            raise ServiceError(400, "body must carry 'model' (string)")
        version = body.get("version")
        try:
            record = self.registry.get(
                name, int(version) if version is not None else None
            )
        except KeyError as error:
            # str(KeyError) wraps the message in quotes; unwrap it.
            raise ServiceError(404, error.args[0] if error.args else str(error))
        rows = body.get("rows")
        values = body.get("values")
        if (rows is None) == (values is None):
            raise ServiceError(
                400, "provide exactly one of 'rows' (item ids) or "
                     "'values' (expression values)"
            )
        if values is not None:
            rows = self._discretize_values(record, values)
        else:
            try:
                rows = [frozenset(int(i) for i in row) for row in rows]
            except (TypeError, ValueError):
                raise ServiceError(400, "'rows' must be lists of item ids")
        return record, rows

    def classify_payload(self, record: ModelRecord, pairs: list) -> dict:
        """Render batched ``(label, source)`` pairs as a response body."""
        class_names = (
            record.pipeline.get("class_names") if record.pipeline else None
        )
        return {
            "model": record.name,
            "version": record.version,
            "predictions": [label for label, _ in pairs],
            "sources": [source for _, source in pairs],
            "class_names": class_names,
        }

    def record_classify(self, n_rows: int, seconds: float) -> None:
        """Telemetry for one completed classify request (either front end)."""
        self.telemetry.increment("classify_requests")
        self.telemetry.increment("classify_rows", n_rows)
        self.telemetry.observe("classify_seconds", seconds)

    def observe_batch(self, n_rows: int) -> None:
        """Record one coalesced predict_batch call's row count."""
        self.telemetry.observe(
            "classify_batch_size", n_rows, buckets=BATCH_SIZE_BUCKETS
        )

    def _discretize_values(self, record, values) -> list[frozenset[int]]:
        if record.pipeline is None:
            raise ServiceError(
                400,
                f"model {record.name!r} has no pipeline; send discretized "
                "'rows' instead of raw 'values'",
            )
        pipeline = record.pipeline
        try:
            matrix = np.asarray(values, dtype=float)
            if matrix.ndim != 2:
                raise ValueError("expected a 2-d list of sample values")
            discretizer = EntropyDiscretizer.from_cuts(
                {int(g): c for g, c in pipeline["cuts"].items()},
                pipeline["gene_names"],
                pipeline["class_names"],
            )
            data = GeneExpressionDataset(
                matrix,
                [0] * matrix.shape[0],
                pipeline["gene_names"],
                pipeline["class_names"],
            )
            return list(discretizer.transform(data).rows)
        except ServiceError:
            raise
        except (KeyError, ValueError, TypeError) as error:
            raise ServiceError(400, f"bad 'values' payload: {error}")

    def _batcher(self, record) -> MicroBatcher:
        key = (record.name, record.version)
        with self._lock:
            if self._closed:
                raise ServiceError(503, "service is shutting down")
            batcher = self._batchers.get(key)
            if batcher is None:
                batcher = MicroBatcher(
                    record.model.predict_batch,
                    max_batch_rows=self.batch_rows,
                    max_delay=self.batch_delay,
                    name=f"repro-batcher-{record.name}-v{record.version}",
                    on_batch=self.observe_batch,
                )
                self._batchers[key] = batcher
            return batcher

    # -- mining ------------------------------------------------------------

    def submit_mine(
        self, body: dict, _replay_job_id: Optional[str] = None
    ) -> dict:
        start = time.monotonic()
        items = body.get("items")
        if not isinstance(items, dict):
            raise ServiceError(
                400, "body must carry 'items' (a discretized dataset payload)"
            )
        try:
            dataset = discretized_from_payload(items)
        except (KeyError, ValueError, TypeError) as error:
            raise ServiceError(400, f"bad 'items' payload: {error}")
        try:
            consequent = int(body.get("consequent", 1))
            k = int(body.get("k", 1))
        except (TypeError, ValueError):
            raise ServiceError(400, "'consequent' and 'k' must be integers")
        if not 0 <= consequent < dataset.n_classes:
            raise ServiceError(
                400, f"consequent {consequent} out of range for "
                     f"{dataset.n_classes} classes"
            )
        if k < 1:
            raise ServiceError(400, f"k must be >= 1, got {k}")
        engine = body.get("engine", "bitset")
        if engine not in ENGINES:
            raise ServiceError(
                400, f"unknown engine {engine!r}; expected one of {ENGINES}"
            )
        backend = body.get("backend")
        if backend is not None:
            available = available_backends()
            if backend != AUTO_BACKEND and backend not in available:
                raise ServiceError(
                    400, f"unknown backend {backend!r}; expected one of "
                         f"{(AUTO_BACKEND,) + tuple(available)}"
                )
        strategy = body.get("strategy", "direct")
        if strategy not in (*STRATEGIES, AUTO_STRATEGY):
            raise ServiceError(
                400, f"unknown strategy {strategy!r}; expected one of "
                     f"{(*STRATEGIES, AUTO_STRATEGY)}"
            )
        if strategy == AUTO_STRATEGY:
            # Resolve before keying: the cache/store key records what
            # actually ran, so auto requests deduplicate with explicit
            # requests for the same concrete strategy and replays never
            # re-plan.
            strategy = plan_auto_strategy(dataset.n_rows)
        minsup = body.get("minsup")
        if minsup is None:
            try:
                minsup = relative_minsup(
                    dataset, consequent,
                    float(body.get("minsup_fraction", 0.7)),
                )
            except (TypeError, ValueError) as error:
                raise ServiceError(400, str(error))
        minsup = int(minsup)

        key = mining_key(
            dataset_fingerprint(dataset), consequent, minsup, k, engine,
            strategy=strategy,
        )
        cached = self.cache.get(key)
        if cached is not None:
            self.telemetry.increment("mine_cache_hits")
            self.telemetry.observe("mine_submit_seconds",
                                   time.monotonic() - start)
            return {
                "status": DONE,
                "cached": True,
                "key": key,
                "result": topk_result_to_payload(cached),
            }
        self.telemetry.increment("mine_cache_misses")
        if self.store is not None:
            # Content-addressed durable results outlive restarts: an
            # identical request mined by a previous process incarnation
            # answers from SQLite (mining is deterministic, so the
            # stored payload equals what a fresh mine would produce).
            stored = self.store.get_result(key)
            if stored is not None:
                self.telemetry.increment("mine_store_hits")
                self.telemetry.observe("mine_submit_seconds",
                                       time.monotonic() - start)
                return {
                    "status": DONE,
                    "cached": True,
                    "key": key,
                    "result": stored,
                }

        node_budget = _validate_budget(
            body, "node_budget", self.node_budget, integral=True
        )
        time_budget = _validate_budget(
            body, "time_budget", self.time_budget, integral=False
        )
        n_jobs = body.get("n_jobs", self.mine_jobs)
        if n_jobs == AUTO_JOBS:
            # The adaptive planner decides serial vs parallel per
            # workload; an operator who pinned mine_jobs to 1 has
            # disabled parallel mining, which overrides the request.
            if self.mine_jobs != AUTO_JOBS and self.mine_jobs <= 1:
                n_jobs = 1
        else:
            try:
                n_jobs = int(n_jobs)
            except (TypeError, ValueError):
                raise ServiceError(400, "'n_jobs' must be an integer or 'auto'")
            if n_jobs < 1:
                raise ServiceError(400, f"n_jobs must be >= 1, got {n_jobs}")
            # Cap per-request parallelism at the operator's configuration
            # so one client cannot fan a single job out over every core
            # (an 'auto' operator configuration delegates the cap to the
            # planner, which never exceeds the core count).
            if self.mine_jobs != AUTO_JOBS:
                n_jobs = min(n_jobs, self.mine_jobs)

        def run(job):
            try:
                result = mine_topk(
                    dataset, consequent, minsup, k=k, engine=engine,
                    node_budget=node_budget, time_budget=time_budget,
                    cancel=job.cancel_event, n_jobs=n_jobs, backend=backend,
                    strategy=strategy,
                )
                # Pure enumeration time, excluding queueing, dataset
                # decoding and result serialization.
                self.telemetry.observe(
                    "kernel_seconds", result.stats.elapsed_seconds
                )
                if result.stats.degraded:
                    # The mine survived worker loss by degrading to
                    # serial execution; the result is still exact.
                    self.telemetry.increment("mine_degraded")
                if result.stats.completed:
                    self.cache.put(key, result)
                return topk_result_to_payload(result)
            finally:
                with self._lock:
                    if self._inflight.get(key) == job.job_id:
                        del self._inflight[key]

        # The inflight check, submit, and registration must be one
        # atomic step: otherwise two concurrent identical requests can
        # both pass the check and both mine, and a fast-finishing job's
        # cleanup can run before registration, leaving a stale inflight
        # entry.  A worker that picks the job up immediately blocks in
        # the cleanup on this same lock until registration is done (the
        # job function never *acquires* the lock while submit holds it
        # on another thread's behalf — there is no reverse ordering).
        with self._lock:
            inflight_id = self._inflight.get(key)
            if inflight_id is not None:
                try:
                    inflight_job = self.jobs.get(inflight_id)
                except KeyError:
                    inflight_job = None
                if inflight_job is not None and inflight_job.status in (
                    "queued", "running"
                ):
                    self.telemetry.increment("mine_deduplicated")
                    return {
                        "status": inflight_job.status,
                        "cached": False,
                        "deduplicated": True,
                        "key": key,
                        "job_id": inflight_job.job_id,
                    }
                # The registered job already reached a terminal state;
                # drop the stale entry before registering a fresh one.
                del self._inflight[key]
            job_id = _replay_job_id
            if self.store is not None:
                # Persist the *normalized* request (minsup resolved,
                # budgets validated, n_jobs capped) before the queue can
                # touch the job: a crash from here on leaves a row the
                # next boot replays verbatim — same mining key, same
                # result, bit for bit.
                if job_id is None:
                    job_id = self.jobs.next_id()
                self.store.record_submitted(job_id, key, {
                    "items": items,
                    "consequent": consequent,
                    "minsup": minsup,
                    "k": k,
                    "engine": engine,
                    "backend": backend,
                    "strategy": strategy,
                    "node_budget": node_budget,
                    "time_budget": time_budget,
                    "n_jobs": n_jobs,
                })
            if job_id is None:
                job = self.jobs.submit(run)
            else:
                job = self.jobs.submit(run, job_id=job_id)
            self._inflight[key] = job.job_id
        self.telemetry.increment("mine_jobs_submitted")
        self.telemetry.observe("mine_submit_seconds", time.monotonic() - start)
        return {
            "status": job.status,
            "cached": False,
            "key": key,
            "job_id": job.job_id,
        }

    def _recover_jobs(self) -> None:
        """Re-enqueue jobs a dead process left queued or running.

        Runs once at construction, before any transport can accept
        requests.  Each pending store row is replayed through
        :meth:`submit_mine` under its *original* id, so a client that
        submitted before the crash keeps polling the same ``/jobs/<id>``
        URL and simply sees its job finish.  Replays that hit a durable
        result adopt it; replays that deduplicate onto an identical
        recovered job are recorded as proxies and answered through the
        job they merged into.
        """
        assert self.store is not None
        for entry in self.store.pending_jobs():
            job_id = entry["job_id"]
            try:
                response = self.submit_mine(
                    entry["request"], _replay_job_id=job_id
                )
            except ServiceError as error:
                # The stored request was validated when first accepted;
                # a rejected replay means the store was edited or the
                # schema moved.  Fail the job visibly instead of
                # resurrecting it forever.
                self.store.apply_snapshot({
                    "job_id": job_id,
                    "status": FAILED,
                    "error": f"replay rejected: {error}",
                    "finished_at": time.time(),
                })
                continue
            if response.get("cached"):
                self.store.mark_finished_from_result(job_id, response["key"])
            elif response.get("deduplicated"):
                self.store.mark_proxy(job_id, response["job_id"])
            self.telemetry.increment("mine_jobs_recovered")

    def job_status(self, job_id: str) -> dict:
        try:
            # Snapshot under the queue lock: a poller must never observe
            # a torn pair such as status "running" with a result already
            # attached (or "done" without one).
            return self.jobs.snapshot(job_id)
        except KeyError:
            pass
        # Jobs from previous process incarnations live only in the store.
        if self.store is not None:
            stored = self.store.get_job(job_id)
            if stored is not None:
                proxy = stored.pop("proxy_for", None)
                if proxy is not None and stored["status"] in (QUEUED, RUNNING):
                    try:
                        live = dict(self.jobs.snapshot(proxy))
                    except KeyError:
                        live = self.store.get_job(proxy)
                    if live is not None:
                        live.pop("proxy_for", None)
                        live["job_id"] = job_id
                        live["deduplicated_into"] = proxy
                        return live
                return stored
        raise ServiceError(404, f"unknown job {job_id!r}")

    def cancel_job(self, job_id: str) -> dict:
        try:
            self.jobs.cancel(job_id)
            payload = self.jobs.snapshot(job_id)
        except KeyError:
            if self.store is not None:
                stored = self.store.get_job(job_id)
                if stored is not None:
                    proxy = stored.get("proxy_for")
                    if proxy is not None and stored["status"] in (
                        QUEUED, RUNNING
                    ):
                        # The replayed job merged into a live one;
                        # cancelling the handle cancels the target.
                        return self.cancel_job(proxy)
                    # Recovery re-enqueues every non-terminal row, so a
                    # store-only job is terminal; cancel is a no-op.
                    stored.pop("result", None)
                    stored.pop("proxy_for", None)
                    return stored
            raise ServiceError(404, f"unknown job {job_id!r}")
        self.telemetry.increment("mine_jobs_cancelled")
        payload.pop("result", None)
        return payload

    # -- lifecycle ---------------------------------------------------------

    def checkpoint(self) -> None:
        """Flush every known job's state and the WAL into the store file."""
        if self.store is not None:
            self.store.checkpoint(self.jobs.snapshots())

    def shutdown(self) -> None:
        """Cancel mining, drain batchers, join every owned thread.

        With a durable store, shutdown also checkpoints: every job's
        final state is flushed, and interrupted mines (queued or
        running, not user-cancelled) are re-armed as ``queued`` so the
        next boot resumes them — a graceful restart loses nothing a
        kill -9 wouldn't.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            batchers = list(self._batchers.values())
        resumable: list[str] = []
        if self.store is not None:
            resumable = [
                snap["job_id"] for snap in self.jobs.snapshots()
                if snap["status"] in (QUEUED, RUNNING)
                and not snap["cancel_requested"]
            ]
        self.jobs.shutdown(cancel_running=True)
        for batcher in batchers:
            batcher.close()
        if self.store is not None:
            self.checkpoint()
            for job_id in resumable:
                row = self.store.get_job(job_id)
                # A mine that completed inside the drain window keeps
                # its terminal state; anything interrupted is re-armed.
                if row is not None and row["status"] != DONE:
                    self.store.requeue(job_id)
            self.store.checkpoint()
            self.store.close()


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto the shared :class:`RuleService`."""

    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"
    # 16 MiB request bound: a scaled paper dataset payload fits easily,
    # and anything bigger is almost certainly a client bug.
    max_body_bytes = 16 * 1024 * 1024

    @property
    def service(self) -> RuleService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> dict:
        try:
            length = int(self.headers.get("Content-Length", 0))
        except (TypeError, ValueError):
            raise ServiceError(400, "malformed Content-Length header")
        if length > self.max_body_bytes:
            raise ServiceError(413, "request body too large")
        if length <= 0:
            raise ServiceError(400, "missing request body")
        raw = self.rfile.read(length)
        try:
            body = json.loads(raw)
        except json.JSONDecodeError as error:
            raise ServiceError(400, f"invalid JSON body: {error}")
        if not isinstance(body, dict):
            raise ServiceError(400, "request body must be a JSON object")
        return body

    def _dispatch(self, route: str, fn) -> None:
        start = time.monotonic()
        server = self.server
        with server.inflight_lock:  # type: ignore[attr-defined]
            server.inflight += 1  # type: ignore[attr-defined]
        self.service.telemetry.increment("http_requests")
        try:
            status, payload = fn()
        except ServiceError as error:
            self.service.telemetry.increment("http_errors")
            status, payload = error.status, {"error": str(error)}
        except Exception as error:  # pragma: no cover - defensive
            self.service.telemetry.increment("http_errors")
            status, payload = 500, {"error": f"internal error: {error}"}
        finally:
            with server.inflight_lock:  # type: ignore[attr-defined]
                server.inflight -= 1  # type: ignore[attr-defined]
        self._send_json(status, payload)
        # Per-route latency under a normalized label (ids collapsed to
        # '*') so /metrics exposes one histogram per endpoint, not per
        # job.  Both front ends use the same label family.
        self.service.telemetry.observe(
            f"route_seconds:{route}", time.monotonic() - start
        )

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/healthz":
            self._dispatch("GET /healthz",
                           lambda: (200, self.service.health()))
        elif path == "/metrics":
            self._dispatch("GET /metrics",
                           lambda: (200, self.service.metrics()))
        elif path == "/models":
            self._dispatch("GET /models",
                           lambda: (200, self.service.list_models()))
        elif path.startswith("/jobs/"):
            job_id = path[len("/jobs/"):]
            self._dispatch("GET /jobs/*",
                           lambda: (200, self.service.job_status(job_id)))
        else:
            self._send_json(404, {"error": f"no route for GET {path}"})

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        path = self.path.split("?", 1)[0].rstrip("/")
        if path == "/models":
            self._dispatch(
                "POST /models",
                lambda: (201, self.service.register_model(self._read_json())),
            )
        elif path == "/classify":
            self._dispatch(
                "POST /classify",
                lambda: (200, self.service.classify(self._read_json())),
            )
        elif path == "/mine":
            self._dispatch(
                "POST /mine",
                lambda: (202, self.service.submit_mine(self._read_json())),
            )
        else:
            self._send_json(404, {"error": f"no route for POST {path}"})

    def do_DELETE(self) -> None:  # noqa: N802 - stdlib naming
        path = self.path.split("?", 1)[0].rstrip("/")
        if path.startswith("/jobs/"):
            job_id = path[len("/jobs/"):]
            self._dispatch("DELETE /jobs/*",
                           lambda: (200, self.service.cancel_job(job_id)))
        else:
            self._send_json(404, {"error": f"no route for DELETE {path}"})


class ReproServer:
    """A :class:`RuleService` behind a stdlib threading HTTP server.

    Args:
        host/port: bind address; port 0 picks an ephemeral port (read it
            back from :attr:`port` — the e2e tests rely on this).
        service: an existing facade to serve; one is built from the
            remaining keyword arguments when omitted.
        verbose: log one line per request to stderr.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        service: Optional[RuleService] = None,
        verbose: bool = False,
        **service_kwargs,
    ) -> None:
        self.service = service if service is not None else RuleService(
            **service_kwargs
        )
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        # Handler threads are short-lived; daemonize them so an in-flight
        # response cannot wedge shutdown, and join workers we own instead.
        self._httpd.daemon_threads = True
        self._httpd.service = self.service  # type: ignore[attr-defined]
        self._httpd.verbose = verbose  # type: ignore[attr-defined]
        self._httpd.inflight = 0  # type: ignore[attr-defined]
        self._httpd.inflight_lock = threading.Lock()  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ReproServer":
        """Serve in a background thread; returns once the socket listens."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-serve",
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted."""
        try:
            self._httpd.serve_forever(poll_interval=0.5)
        except KeyboardInterrupt:
            pass
        finally:
            self.stop()

    def stop(self, grace_seconds: float = 0.0) -> None:
        """Graceful shutdown: jobs cancelled, threads joined, socket closed.

        ``grace_seconds`` bounds a drain phase between "stop accepting"
        and "tear the service down": in-flight handler threads get that
        long to finish writing responses.  The default of 0 preserves
        the immediate-stop behaviour the unit tests rely on; ``repro
        serve`` passes its ``--grace-seconds``.
        """
        self._httpd.shutdown()
        if grace_seconds > 0:
            deadline = time.monotonic() + grace_seconds
            while time.monotonic() < deadline:
                with self._httpd.inflight_lock:  # type: ignore[attr-defined]
                    inflight = self._httpd.inflight  # type: ignore[attr-defined]
                if inflight == 0:
                    break
                time.sleep(0.01)
        # Shutdown checkpoints the job store (when configured) and
        # re-arms interrupted mines for the next boot.
        self.service.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
