"""Tall-cohort tier-1 suite: generators, backends, auto selection, bench.

The paper's datasets are tiny (38-102 rows); the tall synthetic cohorts
are the committed workloads where row bitsets span many machine words
and the vectorized backends earn their keep.  This module is the tier-1
coverage for that front:

* the chunked generator is deterministic, prefix-stable across cohort
  sizes, and structurally sound (non-empty rows, both classes);
* mining a tall cohort is bit-identical (results AND MinerStats
  counters) across every backend installed in this process;
* ``backend="auto"`` picks int at paper scale and the vectorized
  backend on tall top-k runs — while FARMER stays on int — and the
  choice is observable;
* the bench harness measures tall workloads with per-backend columns
  and an honest ``chose_backend`` field.

It runs under every ``REPRO_BITSET_BACKEND`` matrix value: nothing here
requires the numpy *backend* (numpy itself is needed only by the
generator, which every test environment has).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.baselines.farmer import FarmerPolicy, mine_farmer
from repro.bench import QUICK_WORKLOADS, Workload, _measure
from repro.core.backends import available_backends, plan_auto_backend
from repro.core.enumeration import run_enumeration
from repro.core.topk_miner import mine_topk, relative_minsup
from repro.core.view import MiningView
from repro.data import (
    TALL_COHORTS,
    TallCohortSpec,
    generate_tall_cohort,
    iter_tall_chunks,
)
from repro.parallel import results_equal

BACKENDS = available_backends()

# Small enough for seconds-long mining under the slowest backend, tall
# enough that every bitset spans multiple 64-bit words.
SMALL_TALL = TALL_COHORTS["tall-1k"].scaled(0.125)


def _counters(stats) -> dict:
    return {
        name: getattr(stats, name)
        for name in (
            "nodes_visited", "groups_emitted", "loose_pruned",
            "tight_pruned", "backward_pruned",
        )
    }


class TestGenerator:
    def test_registry_shapes(self):
        assert set(TALL_COHORTS) == {
            "tall-1k", "tall-4k", "tall-16k", "tall-64k",
        }
        assert TALL_COHORTS["tall-1k"].n_rows == 1024
        assert TALL_COHORTS["tall-4k"].n_rows == 4096
        assert TALL_COHORTS["tall-16k"].n_rows == 16384
        assert TALL_COHORTS["tall-64k"].n_rows == 65536

    def test_deterministic(self):
        first = generate_tall_cohort(SMALL_TALL)
        second = generate_tall_cohort(SMALL_TALL)
        assert first.rows == second.rows
        assert first.labels == second.labels

    def test_prefix_stable_across_sizes(self):
        """tall-4k begins with exactly the rows of tall-1k: chunk draws
        are keyed by (seed, chunk index), so growing the cohort only
        appends."""
        small = generate_tall_cohort("tall-1k")
        large = generate_tall_cohort("tall-4k")
        assert large.rows[: small.n_rows] == small.rows
        assert large.labels[: small.n_rows] == small.labels

    def test_chunks_stream_the_same_rows(self):
        spec = dataclasses.replace(SMALL_TALL, chunk_rows=50)
        rows: list = []
        labels: list = []
        for chunk_rows, chunk_labels in iter_tall_chunks(spec):
            assert 1 <= len(chunk_rows) <= 50
            rows.extend(chunk_rows)
            labels.extend(chunk_labels)
        dataset = generate_tall_cohort(spec)
        assert rows == dataset.rows
        assert labels == dataset.labels

    def test_structurally_sound(self):
        dataset = generate_tall_cohort(SMALL_TALL)
        assert dataset.n_rows == SMALL_TALL.n_rows > 64
        assert all(dataset.rows)  # no empty rows
        assert set(dataset.labels) == {0, 1}
        assert dataset.class_names == ["control", "case"]

    def test_scaled_floors_at_96_rows(self):
        assert TALL_COHORTS["tall-1k"].scaled(0.01).n_rows == 96

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError, match="unknown tall cohort"):
            generate_tall_cohort("tall-2k")

    def test_invalid_spec_rejected(self):
        bad = dataclasses.replace(SMALL_TALL, n_signal=0)
        with pytest.raises(ValueError, match="n_signal"):
            generate_tall_cohort(bad)


class TestBackendIdentityOnTallData:
    """Results and stats counters are bit-identical at multi-word size."""

    @pytest.fixture(scope="class")
    def dataset(self):
        return generate_tall_cohort(SMALL_TALL)

    def test_topk_identical_across_backends(self, dataset):
        minsup = relative_minsup(dataset, 1, 0.8)
        baseline = mine_topk(dataset, 1, minsup, k=2, backend="int")
        for backend_name in BACKENDS:
            other = mine_topk(dataset, 1, minsup, k=2, backend=backend_name)
            assert results_equal(baseline, other), backend_name
            assert _counters(other.stats) == _counters(baseline.stats), (
                backend_name
            )

    def test_farmer_identical_across_backends(self, dataset):
        key = lambda g: (
            g.antecedent, g.consequent, g.row_set, g.support, g.confidence
        )
        minsup = relative_minsup(dataset, 1, 0.85)
        baseline = mine_farmer(
            dataset, 1, minsup, engine="bitset", backend="int"
        )
        for backend_name in BACKENDS:
            other = mine_farmer(
                dataset, 1, minsup, engine="bitset", backend=backend_name
            )
            assert list(map(key, other.groups)) == list(
                map(key, baseline.groups)
            ), backend_name
            assert _counters(other.stats) == _counters(baseline.stats), (
                backend_name
            )

    def test_skipping_threshold_bits_changes_nothing(self, dataset):
        """FARMER's ``uses_threshold_bits = False`` is purely an
        execution shortcut: forcing the row sets back on gives the same
        groups and the same counters."""

        class EagerPolicy(FarmerPolicy):
            uses_threshold_bits = True

        minsup = relative_minsup(dataset, 1, 0.85)
        view = MiningView.cached(dataset, 1, minsup)
        assert FarmerPolicy.uses_threshold_bits is False
        fast, eager = FarmerPolicy(view), EagerPolicy(view)
        fast_stats = run_enumeration(view, fast, engine="bitset")
        eager_stats = run_enumeration(view, eager, engine="bitset")
        assert fast.groups == eager.groups
        assert _counters(fast_stats) == _counters(eager_stats)


class TestAutoSelectionEndToEnd:
    def test_paper_scale_auto_is_int(self):
        from repro.data import make_figure1_example

        dataset = make_figure1_example()
        view = MiningView.cached(dataset, 1, 1, backend="auto")
        assert view.backend.name == "int"

    def test_tall_topk_auto_matches_int_output(self):
        dataset = generate_tall_cohort(SMALL_TALL)
        minsup = relative_minsup(dataset, 1, 0.8)
        baseline = mine_topk(dataset, 1, minsup, k=2, backend="int")
        auto = mine_topk(dataset, 1, minsup, k=2, backend="auto")
        assert results_equal(baseline, auto)
        assert _counters(auto.stats) == _counters(baseline.stats)

    def test_tall_view_auto_resolution(self):
        dataset = generate_tall_cohort("tall-1k")
        view = MiningView.cached(dataset, 1, 400, backend="auto")
        expected = plan_auto_backend(dataset.n_rows)
        assert view.backend.name == expected
        if "numpy" in BACKENDS:
            assert expected == "numpy"

    def test_tall_farmer_auto_stays_on_int(self):
        dataset = generate_tall_cohort(SMALL_TALL)
        minsup = relative_minsup(dataset, 1, 0.9)
        result = mine_farmer(
            dataset, 1, minsup, engine="bitset", backend="auto"
        )
        baseline = mine_farmer(
            dataset, 1, minsup, engine="bitset", backend="int"
        )
        assert result.groups == baseline.groups
        # The planner's farmer branch is unconditional, so the resolved
        # view is the int one even where numpy is installed.
        assert plan_auto_backend(dataset.n_rows, task="farmer") == "int"


class TestBenchTallWorkloads:
    def test_quick_profile_has_a_tall_workload(self):
        assert any(
            w.dataset.startswith("tall-") for w in QUICK_WORKLOADS
        )

    def test_measure_reports_backend_columns_and_honest_auto(self):
        workload = Workload(
            "tall-test", "tall-1k", "topk", "bitset",
            k=1, fraction=0.9, scale=0.125, backends=("int",),
            measure_parallel=False,
        )
        entry = _measure(workload, scale=1.0, jobs=(), repeats=1)
        assert entry["n_rows"] == SMALL_TALL.n_rows  # workload scale pins
        assert set(entry["backends"]) == {"int"}
        assert entry["backends"]["int"]["identical_output"] is True
        auto = entry["auto_backend"]
        assert auto["identical_output"] is True
        assert auto["chose_backend"] == plan_auto_backend(
            SMALL_TALL.n_rows
        )
        assert entry["parallel"] == {}
