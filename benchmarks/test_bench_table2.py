"""Table 2 benchmarks: classifier training + evaluation.

Times each classifier's end-to-end fit on the benchmark workloads and
asserts the paper's qualitative accuracy ordering on the shifted
prostate-cancer analog (RCBT robust, C4.5 family collapsed).
"""

import pytest

from repro.classifiers import (
    AdaBoostTrees,
    BaggingTrees,
    CBAClassifier,
    DecisionTreeC45,
    IRGClassifier,
    RCBTClassifier,
    SVMClassifier,
)


def numeric_features(bench):
    genes = bench.discretizer.selected_genes_
    return (
        bench.train.values[:, genes],
        bench.test.values[:, genes],
        bench.train.labels,
        bench.test.labels,
    )


def test_table2_rcbt_fit(benchmark, all_benchmark):
    train = all_benchmark.train_items
    model = benchmark(lambda: RCBTClassifier(k=10, nl=20).fit(train))
    accuracy = model.score(all_benchmark.test_items)
    assert accuracy >= 0.8
    benchmark.extra_info.update({"classifier": "RCBT", "accuracy": accuracy})


def test_table2_cba_fit(benchmark, all_benchmark):
    train = all_benchmark.train_items
    model = benchmark(lambda: CBAClassifier().fit(train))
    accuracy = model.score(all_benchmark.test_items)
    assert accuracy >= 0.7
    benchmark.extra_info.update({"classifier": "CBA", "accuracy": accuracy})


def test_table2_irg_fit(benchmark, all_benchmark):
    train = all_benchmark.train_items
    model = benchmark(
        lambda: IRGClassifier(minconf=0.8, node_budget=100_000).fit(train)
    )
    accuracy = model.score(all_benchmark.test_items)
    benchmark.extra_info.update({"classifier": "IRG", "accuracy": accuracy})


def test_table2_tree_fit(benchmark, all_benchmark):
    X_train, X_test, y_train, y_test = numeric_features(all_benchmark)
    model = benchmark(lambda: DecisionTreeC45().fit(X_train, y_train))
    benchmark.extra_info.update(
        {"classifier": "C4.5-single", "accuracy": model.score(X_test, y_test)}
    )


def test_table2_bagging_fit(benchmark, all_benchmark):
    X_train, X_test, y_train, y_test = numeric_features(all_benchmark)
    model = benchmark(lambda: BaggingTrees(10).fit(X_train, y_train))
    benchmark.extra_info.update(
        {"classifier": "C4.5-bagging", "accuracy": model.score(X_test, y_test)}
    )


def test_table2_boosting_fit(benchmark, all_benchmark):
    X_train, X_test, y_train, y_test = numeric_features(all_benchmark)
    model = benchmark(lambda: AdaBoostTrees(10).fit(X_train, y_train))
    benchmark.extra_info.update(
        {"classifier": "C4.5-boosting",
         "accuracy": model.score(X_test, y_test)}
    )


@pytest.mark.parametrize("kernel", ("linear", "poly"))
def test_table2_svm_fit(benchmark, all_benchmark, kernel):
    X_train, X_test, y_train, y_test = numeric_features(all_benchmark)
    model = benchmark(
        lambda: SVMClassifier(kernel=kernel).fit(X_train, y_train)
    )
    benchmark.extra_info.update(
        {"classifier": f"SVM-{kernel}", "accuracy": model.score(X_test, y_test)}
    )


def test_table2_shape_pc_collapse(pc_benchmark):
    """On the shifted PC analog, the C4.5 family collapses while RCBT
    stays accurate — the paper's most distinctive Table 2 row."""
    X_train, X_test, y_train, y_test = numeric_features(pc_benchmark)
    tree_accuracy = DecisionTreeC45().fit(X_train, y_train).score(
        X_test, y_test
    )
    rcbt = RCBTClassifier(k=5, nl=10).fit(pc_benchmark.train_items)
    rcbt_accuracy = rcbt.score(pc_benchmark.test_items)
    assert rcbt_accuracy >= tree_accuracy + 0.3
    assert tree_accuracy <= 0.5


def test_table2_shape_rcbt_fewer_defaults(all_benchmark):
    """Section 6.2: RCBT uses the default class less than CBA."""
    train, test = all_benchmark.train_items, all_benchmark.test_items
    rcbt = RCBTClassifier(k=5, nl=10).fit(train)
    cba = CBAClassifier().fit(train)
    _p, rcbt_sources = rcbt.predict_with_sources(test)
    _p, cba_sources = cba.predict_with_sources(test)
    assert rcbt_sources.count("default") <= cba_sources.count("default")
