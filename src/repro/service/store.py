"""Durable SQLite-backed job + result store for the serving layer.

PR 1's :class:`~repro.service.jobs.JobQueue` keeps jobs only in memory:
restart ``repro serve`` (deploy, crash, OOM kill) and every queued or
running mine is gone, along with every finished result a client might
still poll for.  This module makes the job registry durable without
changing the queue itself:

* **jobs** — one row per submitted mine: status, timestamps, error, the
  *normalized* request body (minsup resolved, budgets validated) so the
  job can be re-mined verbatim after a restart, and the mining key that
  names its result.
* **results** — finished payloads, content-addressed by the same
  ``(dataset fingerprint, consequent, minsup, k, engine)`` key the
  in-memory :class:`~repro.service.cache.MiningCache` uses.  Identical
  re-mines after a restart are answered from here without re-running
  the kernels, and mining is deterministic so the stored payload is
  bit-identical to what a fresh mine would produce.

The database runs in WAL mode: the service's writer threads (job
transitions) never block ``/jobs/<id>`` readers, and a process kill
mid-transaction leaves a consistent file for the next boot.  On boot,
:meth:`JobStore.pending_jobs` lists every job that was queued or running
when the previous process died; :class:`~repro.service.server.
RuleService` re-enqueues them under their *original* job ids, so clients
polling across the restart never see their job vanish.

All access goes through one connection behind a lock — the write rate is
a few rows per mine, far below where SQLite's own locking would matter,
and a single serialized connection sidesteps every cross-thread caveat
of the :mod:`sqlite3` driver.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from pathlib import Path
from typing import Optional, Union

__all__ = ["JobStore"]

# Job statuses mirrored from repro.service.jobs; duplicated literals
# would drift, but importing jobs here would be circular once jobs
# learns about persistence hooks, so keep the tiny terminal set local.
_TERMINAL = ("done", "failed", "cancelled")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    job_id       TEXT PRIMARY KEY,
    status       TEXT NOT NULL,
    mining_key   TEXT NOT NULL,
    request      TEXT NOT NULL,
    error        TEXT,
    submitted_at REAL NOT NULL,
    started_at   REAL,
    finished_at  REAL,
    result_key   TEXT,
    proxy_for    TEXT
);
CREATE TABLE IF NOT EXISTS results (
    result_key TEXT PRIMARY KEY,
    payload    TEXT NOT NULL,
    created_at REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS jobs_status ON jobs (status);
"""


class JobStore:
    """Durable registry of mining jobs and their content-addressed results.

    Args:
        path: SQLite database file.  Parent directories are created;
            ``journal_mode=WAL`` is enabled on open (a ``-wal``/``-shm``
            sidecar pair appears next to the file while a server runs).
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(
            str(self.path), check_same_thread=False, timeout=30.0
        )
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.executescript(_SCHEMA)
        self._conn.commit()

    # -- writes ------------------------------------------------------------

    def record_submitted(
        self,
        job_id: str,
        mining_key: str,
        request: dict,
        submitted_at: Optional[float] = None,
    ) -> None:
        """Insert a freshly queued job (idempotent for replays).

        A replayed job (re-enqueued on boot) keeps its original
        ``submitted_at`` and simply has its status reset to ``queued``;
        a brand-new id inserts a full row.
        """
        now = time.time() if submitted_at is None else submitted_at
        with self._lock, self._conn:
            updated = self._conn.execute(
                "UPDATE jobs SET status='queued', error=NULL, "
                "started_at=NULL, finished_at=NULL WHERE job_id=?",
                (job_id,),
            ).rowcount
            if not updated:
                self._conn.execute(
                    "INSERT INTO jobs (job_id, status, mining_key, request,"
                    " submitted_at) VALUES (?, 'queued', ?, ?, ?)",
                    (job_id, mining_key,
                     json.dumps(request, separators=(",", ":")), now),
                )

    def apply_snapshot(self, snapshot: dict) -> None:
        """Persist one job-queue transition (a ``JobQueue.snapshot`` dict).

        Unknown job ids are ignored (only mining jobs are durable), and a
        terminal row is never regressed to a non-terminal status — the
        queue notifies outside its lock, so a ``running`` notification
        can arrive after ``done`` for a very fast job.
        """
        job_id = snapshot.get("job_id")
        status = snapshot.get("status")
        if not job_id or not status:
            return
        with self._lock, self._conn:
            row = self._conn.execute(
                "SELECT status, mining_key FROM jobs WHERE job_id=?",
                (job_id,),
            ).fetchone()
            if row is None or row[0] in _TERMINAL:
                return
            result_key = None
            if status == "done" and snapshot.get("result") is not None:
                result_key = row[1]
                self._conn.execute(
                    "INSERT OR IGNORE INTO results (result_key, payload,"
                    " created_at) VALUES (?, ?, ?)",
                    (result_key,
                     json.dumps(snapshot["result"], separators=(",", ":")),
                     time.time()),
                )
            self._conn.execute(
                "UPDATE jobs SET status=?, error=?, started_at=?,"
                " finished_at=?, result_key=COALESCE(?, result_key)"
                " WHERE job_id=?",
                (status, snapshot.get("error"), snapshot.get("started_at"),
                 snapshot.get("finished_at"), result_key, job_id),
            )

    def mark_proxy(self, job_id: str, inflight_job_id: str) -> None:
        """Record that a replayed job deduplicated onto a live job.

        The replayed id stays pollable: :meth:`get_job` reports the
        proxy target so the service can forward status reads to it.
        """
        with self._lock, self._conn:
            self._conn.execute(
                "UPDATE jobs SET proxy_for=? WHERE job_id=?",
                (inflight_job_id, job_id),
            )

    def mark_finished_from_result(self, job_id: str, result_key: str) -> None:
        """Terminal ``done`` transition for a job answered from storage."""
        with self._lock, self._conn:
            self._conn.execute(
                "UPDATE jobs SET status='done', result_key=?, finished_at=?"
                " WHERE job_id=? AND status NOT IN (?, ?, ?)",
                (result_key, time.time(), job_id, *_TERMINAL),
            )

    def requeue(self, job_id: str) -> None:
        """Re-arm a job as ``queued`` for the next boot to resume.

        Graceful shutdown applies this to mines it interrupted (after
        checkpointing their transient cancelled state), so a rolling
        restart behaves like a crash recovery: nothing queued or running
        is lost.
        """
        with self._lock, self._conn:
            self._conn.execute(
                "UPDATE jobs SET status='queued', error=NULL,"
                " started_at=NULL, finished_at=NULL, proxy_for=NULL"
                " WHERE job_id=?",
                (job_id,),
            )

    def put_result(self, result_key: str, payload: dict) -> None:
        """Content-addressed insert of a finished mining payload."""
        with self._lock, self._conn:
            self._conn.execute(
                "INSERT OR IGNORE INTO results (result_key, payload,"
                " created_at) VALUES (?, ?, ?)",
                (result_key, json.dumps(payload, separators=(",", ":")),
                 time.time()),
            )

    # -- reads -------------------------------------------------------------

    def get_result(self, result_key: str) -> Optional[dict]:
        """Stored payload for a mining key, or None."""
        with self._lock:
            row = self._conn.execute(
                "SELECT payload FROM results WHERE result_key=?",
                (result_key,),
            ).fetchone()
        return json.loads(row[0]) if row else None

    def get_job(self, job_id: str) -> Optional[dict]:
        """Snapshot-shaped view of a stored job (result inlined when done)."""
        with self._lock:
            row = self._conn.execute(
                "SELECT job_id, status, error, submitted_at, started_at,"
                " finished_at, result_key, proxy_for FROM jobs"
                " WHERE job_id=?",
                (job_id,),
            ).fetchone()
            payload_row = None
            if row is not None and row[6] is not None:
                payload_row = self._conn.execute(
                    "SELECT payload FROM results WHERE result_key=?",
                    (row[6],),
                ).fetchone()
        if row is None:
            return None
        snapshot = {
            "job_id": row[0],
            "status": row[1],
            "error": row[2],
            "submitted_at": row[3],
            "started_at": row[4],
            "finished_at": row[5],
        }
        if row[7] is not None:
            snapshot["proxy_for"] = row[7]
        if payload_row is not None:
            snapshot["result"] = json.loads(payload_row[0])
        return snapshot

    def pending_jobs(self) -> list[dict]:
        """Jobs a dead process left queued or running, oldest first.

        Each entry carries the normalized ``request`` body needed to
        re-mine it verbatim.
        """
        with self._lock:
            rows = self._conn.execute(
                "SELECT job_id, mining_key, request, submitted_at FROM jobs"
                " WHERE status IN ('queued', 'running') AND proxy_for IS NULL"
                " ORDER BY submitted_at, job_id",
            ).fetchall()
        return [
            {
                "job_id": job_id,
                "mining_key": mining_key,
                "request": json.loads(request),
                "submitted_at": submitted_at,
            }
            for job_id, mining_key, request, submitted_at in rows
        ]

    def max_job_number(self) -> int:
        """Largest numeric suffix among stored ``job-N`` ids (0 if none).

        Seeds the queue's id counter after a restart so resurrected and
        brand-new jobs can never collide on an id.
        """
        with self._lock:
            rows = self._conn.execute("SELECT job_id FROM jobs").fetchall()
        best = 0
        for (job_id,) in rows:
            _, _, suffix = job_id.rpartition("-")
            if suffix.isdigit():
                best = max(best, int(suffix))
        return best

    def stats(self) -> dict:
        """JSON-safe counters for ``/metrics`` and ``/healthz``."""
        with self._lock:
            by_status = dict(self._conn.execute(
                "SELECT status, COUNT(*) FROM jobs GROUP BY status"
            ).fetchall())
            results = self._conn.execute(
                "SELECT COUNT(*) FROM results"
            ).fetchone()[0]
        return {
            "path": str(self.path),
            "jobs": sum(by_status.values()),
            "by_status": dict(sorted(by_status.items())),
            "results": results,
        }

    # -- lifecycle ---------------------------------------------------------

    def checkpoint(self, snapshots: Optional[list[dict]] = None) -> None:
        """Flush queue state and the WAL to the main database file.

        ``snapshots`` (when given) are applied first — graceful shutdown
        passes every known queue job so the file records exactly what
        the process knew at exit; kill -9 skips this and the next boot
        re-enqueues whatever stayed ``queued``/``running``.
        """
        for snapshot in snapshots or ():
            self.apply_snapshot(snapshot)
        with self._lock:
            self._conn.commit()
            self._conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")

    def close(self) -> None:
        with self._lock:
            self._conn.commit()
            self._conn.close()
