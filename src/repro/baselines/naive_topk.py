"""Brute-force reference implementations used as test oracles.

These deliberately trade efficiency for obviousness: all closed rule
groups of a (small) dataset are found by enumerating every subset of rows
and closing it through the Galois connection ``T -> I(T) -> R(I(T))``.
The per-row top-k lists are then computed by sorting — the "naive method"
the paper dismisses in Section 3, which is exactly what makes it a good
independent oracle for MineTopkRGS and FARMER.

The subset enumeration runs over *distinct* row patterns, not rows: any
row subset's item intersection equals the intersection of the distinct
patterns it contains, and every pattern subset is realized by picking
one row per pattern, so the two enumerations reach exactly the same
closures.  Duplicated rows therefore cost nothing — which is what lets
the audit generator's "tall" shape (> 64 rows built from a handful of
patterns) keep an exact oracle.  The feasibility bound is on distinct
non-empty patterns (:data:`_MAX_ORACLE_ROWS`), not on the row count.
"""

from __future__ import annotations

from itertools import combinations
from typing import TYPE_CHECKING

from ..core.bitset import popcount
from ..core.rules import RuleGroup
from ..core.view import MiningView

if TYPE_CHECKING:  # pragma: no cover - import is for annotations only
    from ..data.dataset import DiscretizedDataset

__all__ = ["enumerate_closed_groups", "naive_topk", "naive_farmer"]

_MAX_ORACLE_ROWS = 18


def enumerate_closed_groups(
    dataset: "DiscretizedDataset", consequent: int, minsup: int
) -> list[RuleGroup]:
    """Every closed rule group with the given consequent and support.

    Works over the same frequent-item-reduced row space as the real
    miners (Figure 3 step 1), so outputs are directly comparable.  Row
    bitsets are in original row ids.
    """
    view = MiningView(dataset, consequent, minsup)
    # One representative position per distinct non-empty item pattern
    # (module docstring: pattern subsets reach exactly the closures row
    # subsets do).  Rows without frequent items intersect to nothing and
    # are skipped, as the per-row loop below always skipped them.
    representatives: dict[frozenset[int], int] = {}
    for position in range(view.n_rows):
        items = view.row_items[position]
        if items:
            representatives.setdefault(items, position)
    distinct = sorted(representatives.values())
    if len(distinct) > _MAX_ORACLE_ROWS:
        raise ValueError(
            f"oracle limited to {_MAX_ORACLE_ROWS} distinct non-empty row "
            f"patterns, got {len(distinct)} (of {dataset.n_rows} rows)"
        )
    groups: dict[int, RuleGroup] = {}
    for size in range(1, len(distinct) + 1):
        for subset in combinations(distinct, size):
            items = view.row_items[subset[0]]
            for position in subset[1:]:
                items = items & view.row_items[position]
                if not items:
                    break
            if not items:
                continue
            closure = view.closure_rows(sorted(items))
            if closure is None or closure in groups:
                continue
            support = view.positive_count(closure)
            if support < minsup:
                continue
            total = popcount(closure)
            groups[closure] = RuleGroup(
                antecedent=frozenset(items),
                consequent=consequent,
                row_set=view.positions_to_rows(closure),
                support=support,
                confidence=support / total,
            )
    return list(groups.values())


def naive_topk(
    dataset: "DiscretizedDataset", consequent: int, minsup: int, k: int
) -> dict[int, list[RuleGroup]]:
    """Per-row top-k covering rule groups via mine-everything-then-sort.

    Tie order among equally significant groups is unspecified (as in the
    paper, where it depends on discovery order), so comparisons against
    the real miner should use the multiset of (confidence, support) pairs
    rather than antecedent identity.
    """
    groups = enumerate_closed_groups(dataset, consequent, minsup)
    result: dict[int, list[RuleGroup]] = {}
    for row in range(dataset.n_rows):
        if dataset.labels[row] != consequent:
            continue
        row_bit = 1 << row
        covering = [group for group in groups if group.row_set & row_bit]
        covering.sort(key=lambda g: (g.confidence, g.support), reverse=True)
        result[row] = covering[:k]
    return result


def naive_farmer(
    dataset: "DiscretizedDataset",
    consequent: int,
    minsup: int,
    minconf: float = 0.0,
) -> list[RuleGroup]:
    """All rule groups above static thresholds (FARMER's contract)."""
    return [
        group
        for group in enumerate_closed_groups(dataset, consequent, minsup)
        if group.confidence >= minconf
    ]
