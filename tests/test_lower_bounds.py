"""Tests for FindLB (lower bound search)."""

import pytest

from repro.core.lower_bounds import find_lower_bounds, find_lower_bounds_batch
from repro.core.topk_miner import mine_topk
from repro.data.synthetic import random_discretized_dataset


def top_groups(dataset, consequent=1, minsup=1, k=3):
    result = mine_topk(dataset, consequent, minsup, k=k)
    return result.unique_groups()


class TestDefinition:
    """Lemma 5.1: a lower bound has the group's exact support set and no
    proper subset does."""

    @pytest.mark.parametrize("seed", range(6))
    def test_lower_bounds_have_target_support(self, seed):
        ds = random_discretized_dataset(10, 9, density=0.45, seed=seed)
        for group in top_groups(ds):
            result = find_lower_bounds(ds, group, nl=3)
            for rule in result.rules:
                assert ds.support_set(rule.antecedent) == group.row_set
                assert rule.antecedent <= group.antecedent

    @pytest.mark.parametrize("seed", range(6))
    def test_lower_bounds_minimal(self, seed):
        ds = random_discretized_dataset(10, 9, density=0.45, seed=seed)
        for group in top_groups(ds):
            result = find_lower_bounds(ds, group, nl=3)
            for rule in result.rules:
                for item in rule.antecedent:
                    smaller = rule.antecedent - {item}
                    if smaller:
                        assert ds.support_set(smaller) != group.row_set

    def test_rules_carry_group_stats(self, figure1):
        group = top_groups(figure1, minsup=2)[0]
        result = find_lower_bounds(figure1, group, nl=2)
        for rule in result.rules:
            assert rule.support == group.support
            assert rule.confidence == group.confidence
            assert rule.consequent == group.consequent


class TestFigure1:
    def test_abc_group_lower_bounds(self, figure1):
        # Example 2.2: the group {a,b,c} -> C has lower bounds {a}, {b}.
        groups = [
            g for g in top_groups(figure1, minsup=2)
            if g.antecedent == frozenset({0, 1, 2})
        ]
        assert groups
        result = find_lower_bounds(figure1, groups[0], nl=5)
        antecedents = {tuple(sorted(r.antecedent)) for r in result.rules}
        assert antecedents == {(0,), (1,)}
        assert result.complete


class TestSearchControls:
    def test_nl_limits_count(self, figure1):
        group = top_groups(figure1, minsup=2)[0]
        one = find_lower_bounds(figure1, group, nl=1)
        assert len(one.rules) == 1

    def test_nl_validation(self, figure1):
        group = top_groups(figure1, minsup=2)[0]
        with pytest.raises(ValueError):
            find_lower_bounds(figure1, group, nl=0)

    def test_shortest_first(self):
        ds = random_discretized_dataset(10, 9, density=0.5, seed=2)
        for group in top_groups(ds):
            result = find_lower_bounds(ds, group, nl=5)
            lengths = [len(r.antecedent) for r in result.rules]
            assert lengths == sorted(lengths)

    def test_item_scores_steer_choice(self, figure1):
        # The abc group's lower bounds are {a} and {b}; scoring b above a
        # must put b first.
        groups = [
            g for g in top_groups(figure1, minsup=2)
            if g.antecedent == frozenset({0, 1, 2})
        ]
        result = find_lower_bounds(
            figure1, groups[0], nl=1, item_scores={1: 5.0, 0: 1.0}
        )
        assert result.rules[0].antecedent == frozenset({1})

    def test_max_items_truncation_flagged(self):
        ds = random_discretized_dataset(10, 9, density=0.5, seed=5)
        groups = [g for g in top_groups(ds) if len(g.antecedent) > 2]
        for group in groups:
            result = find_lower_bounds(ds, group, nl=50, max_items=1)
            # With one item the search is truncated; either it found the
            # requested bounds anyway or it must say it was incomplete.
            assert result.complete or len(result.rules) < 50

    def test_fallback_is_full_antecedent(self):
        ds = random_discretized_dataset(10, 9, density=0.5, seed=7)
        group = next(g for g in top_groups(ds) if len(g.antecedent) >= 2)
        result = find_lower_bounds(ds, group, nl=1, max_size=0)
        # max_size=0 forbids even singletons from being extended; the
        # search degenerates but must still return a valid rule.
        assert result.rules
        assert ds.support_set(result.rules[0].antecedent) == group.row_set


class TestBatch:
    def test_batch_covers_all_groups(self):
        ds = random_discretized_dataset(10, 9, density=0.45, seed=3)
        groups = top_groups(ds)
        batch = find_lower_bounds_batch(ds, groups, nl=2)
        for group in groups:
            key = (group.row_set, group.consequent)
            assert key in batch
            assert 1 <= len(batch[key]) <= 2

    def test_batch_memoizes_duplicates(self):
        ds = random_discretized_dataset(10, 9, density=0.45, seed=3)
        groups = top_groups(ds)
        doubled = [*groups, *groups]
        batch = find_lower_bounds_batch(ds, doubled, nl=1)
        assert len(batch) == len({(g.row_set, g.consequent) for g in groups})


class TestProperties:
    """Hypothesis checks of the Lemma 5.1 contract."""

    def test_lemma_5_1_on_random_data(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        from repro.data.dataset import DiscretizedDataset, Item

        @st.composite
        def datasets(draw):
            n_rows = draw(st.integers(4, 9))
            n_items = draw(st.integers(3, 8))
            rows = [
                frozenset(
                    draw(st.sets(st.integers(0, n_items - 1), min_size=1,
                                 max_size=n_items))
                )
                for _ in range(n_rows)
            ]
            labels = draw(
                st.lists(st.integers(0, 1), min_size=n_rows,
                         max_size=n_rows).filter(lambda ls: 1 in ls)
            )
            items = [
                Item(i, i, f"g{i}", float("-inf"), float("inf"))
                for i in range(n_items)
            ]
            return DiscretizedDataset(rows, labels, items,
                                      class_names=["c0", "c1"])

        @given(datasets(), st.integers(1, 5))
        @settings(max_examples=40, deadline=None)
        def check(ds, nl):
            result = mine_topk(ds, 1, 1, k=2)
            for group in result.unique_groups():
                bounds = find_lower_bounds(ds, group, nl=nl)
                assert 1 <= len(bounds.rules) <= nl
                seen = set()
                for rule in bounds.rules:
                    # Exactness, containment, minimality, uniqueness.
                    assert ds.support_set(rule.antecedent) == group.row_set
                    assert rule.antecedent <= group.antecedent
                    assert rule.antecedent not in seen
                    seen.add(rule.antecedent)
                    for item in rule.antecedent:
                        smaller = rule.antecedent - {item}
                        if smaller:
                            assert ds.support_set(smaller) != group.row_set

        check()
