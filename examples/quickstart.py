"""Quickstart: mine top-k covering rule groups and read them.

Walks through the paper's own running example (Figure 1), then does the
same on a synthetic microarray workload with real gene/interval labels.

Run:  python examples/quickstart.py
"""

from repro import make_figure1_example, mine_topk
from repro.data import generate_paper_dataset
from repro.data.discretize import EntropyDiscretizer


def figure1_walkthrough() -> None:
    """The 5-row example of Figure 1(a), classes C (id 1) and not-C (0)."""
    dataset = make_figure1_example()
    print("Figure 1 dataset:")
    for row, (items, label) in enumerate(zip(dataset.rows, dataset.labels), 1):
        names = "".join(sorted(dataset.item_label(i) for i in items))
        print(f"  r{row}: {names}  -> {dataset.class_names[label]}")

    for consequent in (1, 0):
        result = mine_topk(dataset, consequent=consequent, minsup=2, k=1)
        print(f"\nTop-1 covering rule groups, consequent "
              f"{dataset.class_names[consequent]!r}:")
        for row, groups in sorted(result.per_row.items()):
            for group in groups:
                items = "".join(sorted(dataset.item_label(i)
                                       for i in group.antecedent))
                print(f"  row r{row + 1}: {{{items}}} -> "
                      f"{dataset.class_names[consequent]} "
                      f"(sup={group.support}, conf={group.confidence:.1%})")


def microarray_walkthrough() -> None:
    """A small ALL/AML-shaped workload end to end."""
    train, _test = generate_paper_dataset("ALL", scale=0.1)
    discretizer = EntropyDiscretizer().fit(train)
    items = discretizer.transform(train)
    print(f"\nSynthetic ALL/AML: {train.n_samples} samples, "
          f"{train.n_genes} genes, {discretizer.n_selected_genes} kept "
          f"after entropy discretization ({items.n_items} items)")

    result = mine_topk(items, consequent=1, minsup=20, k=3)
    print(f"Mined top-3 covering rule groups per ALL sample in "
          f"{result.stats.nodes_visited} enumeration nodes")

    sample_row = next(iter(sorted(result.per_row)))
    print(f"\nTop-3 rule groups covering training sample {sample_row}:")
    for group in result.per_row[sample_row]:
        preview = ", ".join(
            items.item_label(i) for i in sorted(group.antecedent)[:3]
        )
        more = len(group.antecedent) - 3
        suffix = f", ... (+{more} items)" if more > 0 else ""
        print(f"  {{{preview}{suffix}}} -> ALL "
              f"(sup={group.support}, conf={group.confidence:.1%})")


if __name__ == "__main__":
    figure1_walkthrough()
    microarray_walkthrough()
