"""Classifier interfaces.

Two families coexist in the experiments:

* rule-based classifiers (CBA, IRG, RCBT) consume
  :class:`~repro.data.dataset.DiscretizedDataset` objects whose item
  catalog is shared between the train and test splits;
* numeric classifiers (C4.5 family, SVM) consume plain float matrices —
  in the paper's protocol, the original expression values of the genes
  the entropy discretization selected.

Both expose scikit-style ``fit``/``predict``.  Rule-based classifiers
additionally report per-prediction *decision sources* (``main``,
``standby``, ``default``) so the experiments can reproduce the paper's
default-class usage discussion.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..errors import NotFittedError

if TYPE_CHECKING:  # pragma: no cover - import is for annotations only
    from ..data.dataset import DiscretizedDataset

__all__ = ["RuleBasedClassifier", "NumericClassifier"]


class RuleBasedClassifier(ABC):
    """Base class for classifiers built from association rules."""

    _fitted = False

    @abstractmethod
    def fit(self, train: "DiscretizedDataset") -> "RuleBasedClassifier":
        """Train on a discretized dataset; returns self."""

    @abstractmethod
    def predict_row(self, row_items: frozenset[int]) -> tuple[int, str]:
        """Predict one itemized row; returns (class id, decision source)."""

    def _check_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError(f"{type(self).__name__} is not fitted")

    def predict(self, dataset: "DiscretizedDataset") -> list[int]:
        """Predict every row of a dataset sharing the training catalog."""
        return [label for label, _ in self.predict_batch(dataset.rows)]

    def predict_batch(
        self, rows: Sequence[frozenset[int]]
    ) -> list[tuple[int, str]]:
        """(class id, decision source) for each itemized row.

        The base implementation is a per-row loop; classifiers with a
        rule-matching hot path (RCBT, CBA) override it with a bitset
        implementation that compiles rule antecedents once and amortizes
        that work across the whole batch.  Output is identical to calling
        :meth:`predict_row` per row.
        """
        self._check_fitted()
        return [self.predict_row(row) for row in rows]

    def predict_with_sources(
        self, dataset: "DiscretizedDataset"
    ) -> tuple[list[int], list[str]]:
        """Predictions plus their decision sources."""
        self._check_fitted()
        pairs = self.predict_batch(dataset.rows)
        return [label for label, _ in pairs], [source for _, source in pairs]

    def score(self, dataset: "DiscretizedDataset") -> float:
        """Accuracy on a labelled dataset."""
        predictions = self.predict(dataset)
        correct = sum(1 for p, t in zip(predictions, dataset.labels) if p == t)
        return correct / len(predictions) if predictions else 0.0


class NumericClassifier(ABC):
    """Base class for classifiers over continuous feature matrices."""

    _fitted = False

    @abstractmethod
    def fit(
        self, X: np.ndarray, y: Sequence[int]
    ) -> "NumericClassifier":
        """Train on (n_samples, n_features) values; returns self."""

    @abstractmethod
    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted class ids for each row of ``X``."""

    def _check_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError(f"{type(self).__name__} is not fitted")

    def score(self, X: np.ndarray, y: Sequence[int]) -> float:
        """Accuracy on labelled data."""
        predictions = self.predict(X)
        y = np.asarray(y)
        return float((predictions == y).mean()) if len(y) else 0.0
