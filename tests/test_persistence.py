"""Tests for classifier serialization."""

import json

import pytest

from repro.classifiers import CBAClassifier, RCBTClassifier
from repro.classifiers.persistence import load_classifier, save_classifier
from repro.errors import NotFittedError


class TestRoundtrip:
    def test_cba_roundtrip(self, small_benchmark, tmp_path):
        model = CBAClassifier().fit(small_benchmark.train_items)
        path = tmp_path / "cba.json"
        save_classifier(model, path)
        loaded = load_classifier(path)
        assert isinstance(loaded, CBAClassifier)
        assert loaded.predict(small_benchmark.test_items) == model.predict(
            small_benchmark.test_items
        )
        assert loaded.default_class_ == model.default_class_

    def test_rcbt_roundtrip(self, small_benchmark, tmp_path):
        model = RCBTClassifier(k=3, nl=4).fit(small_benchmark.train_items)
        path = tmp_path / "rcbt.json"
        save_classifier(model, path)
        loaded = load_classifier(path)
        assert isinstance(loaded, RCBTClassifier)
        preds, sources = model.predict_with_sources(
            small_benchmark.test_items
        )
        loaded_preds, loaded_sources = loaded.predict_with_sources(
            small_benchmark.test_items
        )
        assert loaded_preds == preds
        assert loaded_sources == sources
        assert loaded.n_levels_ == model.n_levels_

    def test_rcbt_first_match_mode_preserved(self, small_benchmark, tmp_path):
        model = RCBTClassifier(k=2, nl=2, use_voting=False).fit(
            small_benchmark.train_items
        )
        path = tmp_path / "rcbt_fm.json"
        save_classifier(model, path)
        assert load_classifier(path).use_voting is False


class TestErrors:
    def test_unfitted_rejected(self, tmp_path):
        with pytest.raises(NotFittedError):
            save_classifier(CBAClassifier(), tmp_path / "x.json")

    def test_unsupported_type_rejected(self, small_benchmark, tmp_path):
        from repro.classifiers import IRGClassifier

        model = IRGClassifier().fit(small_benchmark.train_items)
        with pytest.raises(TypeError, match="IRGClassifier"):
            save_classifier(model, tmp_path / "x.json")

    def test_bad_format_version(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": 99, "kind": "cba"}))
        with pytest.raises(ValueError, match="format"):
            load_classifier(path)

    def test_unknown_kind(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": 1, "kind": "mystery"}))
        with pytest.raises(ValueError, match="kind"):
            load_classifier(path)

    def test_file_is_human_auditable(self, small_benchmark, tmp_path):
        model = CBAClassifier().fit(small_benchmark.train_items)
        path = tmp_path / "cba.json"
        save_classifier(model, path)
        payload = json.loads(path.read_text())
        assert payload["kind"] == "cba"
        for rule in payload["rules"]:
            assert set(rule) == {"antecedent", "consequent", "support",
                                 "confidence"}
