"""Row enumeration engines and the shared depth-first driver.

All miners in this package (MineTopkRGS and the FARMER baselines) are a
depth-first walk of the row enumeration tree of Figure 2.  What differs is

* the *policy* — which subtrees are pruned and which discovered rule
  groups are kept (top-k dynamic thresholds vs. FARMER's static ones), and
* the *engine* — the data structure used to project transposed tables and
  count row frequencies at each node.

Three engines are provided:

``bitset``
    Item support sets are integer bitsets over row positions; closures are
    intersections and frequency tests are bit probes.  The fastest engine
    and the default for classifier construction and tests.

``table``
    Faithful to the original FARMER implementation: the projected
    transposed table at each node is an explicit list of tuples (item,
    ascending row list) and frequencies are counted by scanning it.  This
    is the paper's "FARMER" cost profile.

``tree``
    The prefix-tree representation of Section 4.2 (see
    :mod:`repro.core.prefix_tree`), the paper's "FARMER+prefix" /
    MineTopkRGS structure: identical tuple prefixes share trie paths so a
    frequency scan touches each shared path once.

All engines visit exactly the same closed nodes in the same order and call
the same policy hooks, so outputs are identical; only the constant factors
differ.  That property is what lets the Figure 6 benchmarks attribute
speedups to the prefix tree versus the top-k pruning, and it is verified
by the cross-engine tests.
"""

from __future__ import annotations

import time
from bisect import bisect_left
from dataclasses import dataclass
from typing import Optional, Protocol, Sequence

from ..errors import MiningBudgetExceeded
from .bitset import iter_indices, mask_below
from .prefix_tree import PrefixTree
from .view import MiningView

__all__ = [
    "SearchPolicy",
    "MinerStats",
    "run_enumeration",
    "ENGINES",
    "POLL_STRIDE",
]

ENGINES = ("bitset", "table", "tree")

# Deadline/cancellation poll stride of the node budget, in enumeration
# nodes.  Shared with the parallel workers of :mod:`repro.parallel` so a
# cooperative stop lands within the same bounded number of nodes whether
# a mine runs serially or sharded across processes.
POLL_STRIDE = 64


class _CancelToken(Protocol):
    """Cooperative-cancellation token (``threading.Event`` qualifies)."""

    def is_set(self) -> bool: ...


class SearchPolicy(Protocol):
    """Miner-specific pruning and collection logic.

    ``threshold_bits`` passed to the pruning hooks is the position bitset
    of consequent-class rows whose top-k lists the subtree could still
    improve (``X_p ∪ R_p`` of Lemma 3.2); static-threshold policies may
    ignore it.
    """

    @property
    def minsup(self) -> int:
        """Current absolute minimum support (may grow dynamically)."""
        ...

    def loose_prunable(
        self, x_p: int, x_n: int, r_p: int, r_n: int, threshold_bits: int
    ) -> bool:
        """Step 9: prune using bounds available before scanning the table."""
        ...

    def tight_prunable(
        self, x_p: int, x_n: int, m_p: int, r_n: int, threshold_bits: int
    ) -> bool:
        """Step 11: prune using the scanned ``m_p`` bound."""
        ...

    def emit(
        self, items: Sequence[int], position_bits: int, x_p: int, x_n: int
    ) -> None:
        """Step 13: offer the closed rule group found at this node."""
        ...


@dataclass
class MinerStats:
    """Counters describing one enumeration run."""

    nodes_visited: int = 0
    groups_emitted: int = 0
    loose_pruned: int = 0
    tight_pruned: int = 0
    backward_pruned: int = 0
    elapsed_seconds: float = 0.0
    engine: str = "bitset"
    completed: bool = True

    def as_dict(self) -> dict:
        return {
            "nodes_visited": self.nodes_visited,
            "groups_emitted": self.groups_emitted,
            "loose_pruned": self.loose_pruned,
            "tight_pruned": self.tight_pruned,
            "backward_pruned": self.backward_pruned,
            "elapsed_seconds": self.elapsed_seconds,
            "engine": self.engine,
            "completed": self.completed,
        }


class _Budget:
    """Node-count, wall-clock and cancellation limits shared by all engines.

    ``cancel`` is any object with an ``is_set()`` method (typically a
    :class:`threading.Event`); it is polled on the same
    :data:`POLL_STRIDE`-node stride as the deadline so a long-running
    mine can be stopped cooperatively from another thread (the service
    job queue and the process-pool backend rely on this).
    """

    def __init__(
        self,
        stats: MinerStats,
        node_budget: Optional[int],
        time_budget: Optional[float],
        cancel: Optional["_CancelToken"] = None,
    ) -> None:
        self.stats = stats
        self.node_budget = node_budget
        self.deadline = (
            time.monotonic() + time_budget if time_budget is not None else None
        )
        self.cancel = cancel

    def charge_node(self) -> None:
        self.stats.nodes_visited += 1
        if (
            self.node_budget is not None
            and self.stats.nodes_visited > self.node_budget
        ):
            self.stats.completed = False
            raise MiningBudgetExceeded(
                f"node budget {self.node_budget} exceeded", self.stats
            )
        if self.stats.nodes_visited % POLL_STRIDE == 0:
            if self.deadline is not None and time.monotonic() > self.deadline:
                self.stats.completed = False
                raise MiningBudgetExceeded("time budget exceeded", self.stats)
            if self.cancel is not None and self.cancel.is_set():
                self.stats.completed = False
                raise MiningBudgetExceeded("mining cancelled", self.stats)


def run_enumeration(
    view: MiningView,
    policy: SearchPolicy,
    engine: str = "bitset",
    node_budget: Optional[int] = None,
    time_budget: Optional[float] = None,
    cancel: Optional["_CancelToken"] = None,
    first_rows: Optional[int] = None,
) -> MinerStats:
    """Depth-first walk of the row enumeration tree under ``policy``.

    Args:
        view: prepared dataset view (ordering, frequent items).
        policy: pruning/collection logic (top-k or FARMER style).
        engine: one of :data:`ENGINES`.
        node_budget: abort with :class:`MiningBudgetExceeded` after this
            many enumeration nodes.
        time_budget: abort after this many wall-clock seconds.
        cancel: optional cancellation token (anything with ``is_set()``,
            e.g. a :class:`threading.Event`); when set mid-run the walk
            aborts like an exhausted budget.
        first_rows: optional position bitset restricting which
            *first-level* subtrees are expanded (``None`` expands all).
            Skipped roots are not charged to the node budget.  Deeper
            levels are never filtered, so mining every first row exactly
            once across several calls partitions the full tree — the
            sharding contract of :mod:`repro.parallel`.

    Returns:
        The :class:`MinerStats` of the completed run.  On budget overrun
        the exception carries the partial stats instead.
    """
    stats = MinerStats(engine=engine)
    budget = _Budget(stats, node_budget, time_budget, cancel)
    start = time.monotonic()
    try:
        if engine == "bitset":
            _walk_bitset(view, policy, stats, budget, first_rows)
        elif engine == "table":
            _walk_table(view, policy, stats, budget, first_rows)
        elif engine == "tree":
            _walk_tree(view, policy, stats, budget, first_rows)
        else:
            raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
    except MiningBudgetExceeded as overrun:
        # Policies may raise their own budget errors (e.g. a group cap);
        # make sure the run's stats travel with the exception either way.
        stats.completed = False
        if overrun.stats is None:
            overrun.stats = stats
        raise
    finally:
        stats.elapsed_seconds = time.monotonic() - start
    return stats


# ---------------------------------------------------------------------------
# bitset engine
# ---------------------------------------------------------------------------


def _walk_bitset(
    view: MiningView,
    policy: SearchPolicy,
    stats: MinerStats,
    budget: _Budget,
    first_rows: Optional[int] = None,
) -> None:
    item_rows = view.item_rows
    row_items = view.row_items
    positive_mask = view.positive_mask
    # Hot-path bindings: these are resolved once instead of per node.
    bit_count = int.bit_count
    charge_node = budget.charge_node
    loose_prunable = policy.loose_prunable
    tight_prunable = policy.tight_prunable
    emit = policy.emit

    def recurse(
        x_bits: int,
        x_p: int,
        x_n: int,
        items: Sequence[int],
        cand_bits: int,
        allowed: Optional[int],
    ) -> None:
        # The popcounts of `remaining` are maintained decrementally; the
        # parent's (x_p, x_n) split travels down so seed counts are two
        # additions instead of two fresh popcounts per node.
        remaining = cand_bits
        rem_p = bit_count(cand_bits & positive_mask)
        rem_n = bit_count(cand_bits) - rem_p
        for r in iter_indices(cand_bits):
            r_bit = 1 << r
            remaining &= ~r_bit
            if r_bit & positive_mask:
                rem_p -= 1
                seed_p, seed_n = x_p + 1, x_n
            else:
                rem_n -= 1
                seed_p, seed_n = x_p, x_n + 1
            if allowed is not None and not allowed & r_bit:
                continue
            charge_node()
            threshold_bits = ((x_bits | r_bit) | remaining) & positive_mask
            if loose_prunable(seed_p, seed_n, rem_p, rem_n, threshold_bits):
                stats.loose_pruned += 1
                continue
            present = row_items[r]
            new_items = [i for i in items if i in present]
            if not new_items:
                continue
            closure = item_rows[new_items[0]]
            union = closure
            for item in new_items[1:]:
                rows = item_rows[item]
                closure &= rows
                union |= rows
            # Backward pruning (step 7): a row before r outside X containing
            # I(X ∪ {r}) means this group was found in an earlier subtree.
            if closure & (r_bit - 1) & ~x_bits:
                stats.backward_pruned += 1
                continue
            new_cand = remaining & union & ~closure
            new_x_p = bit_count(closure & positive_mask)
            new_x_n = bit_count(closure) - new_x_p
            m_p = bit_count(new_cand & positive_mask)
            new_r_n = bit_count(new_cand) - m_p
            new_threshold = (closure | new_cand) & positive_mask
            if tight_prunable(new_x_p, new_x_n, m_p, new_r_n, new_threshold):
                stats.tight_pruned += 1
                continue
            stats.groups_emitted += 1
            emit(new_items, closure, new_x_p, new_x_n)
            if new_cand:
                recurse(closure, new_x_p, new_x_n, new_items, new_cand, None)

    all_rows = mask_below(view.n_rows)
    recurse(0, 0, 0, list(view.frequent_items), all_rows, first_rows)


# ---------------------------------------------------------------------------
# table engine (FARMER-style projected transposed tables)
# ---------------------------------------------------------------------------


def _walk_table(
    view: MiningView,
    policy: SearchPolicy,
    stats: MinerStats,
    budget: _Budget,
    first_rows: Optional[int] = None,
) -> None:
    positive_mask = view.positive_mask
    n_positive = view.n_positive
    bit_count = int.bit_count
    charge_node = budget.charge_node
    loose_prunable = policy.loose_prunable
    tight_prunable = policy.tight_prunable
    emit = policy.emit

    # The root transposed table: one tuple per frequent item, carrying the
    # item's full ascending row list.  Projection passes tuple references
    # down unchanged; the scan position is implied by r.
    root_tuples = [
        (item, sorted(iter_indices(view.item_rows[item])))
        for item in view.frequent_items
    ]

    def recurse(
        x_bits: int,
        x_p: int,
        x_n: int,
        tuples: list[tuple[int, list[int]]],
        cand: list[int],
        allowed: Optional[int],
    ) -> None:
        # Positive count/bitset of the not-yet-expanded candidates are
        # maintained decrementally instead of being rescanned per node.
        rest_p = 0
        rest_pos_bits = 0
        for row in cand:
            if row < n_positive:
                rest_p += 1
                rest_pos_bits |= 1 << row
        rest_n = len(cand) - rest_p
        for r in cand:
            r_bit = 1 << r
            if r < n_positive:
                rest_p -= 1
                rest_pos_bits &= ~r_bit
                seed_p, seed_n = x_p + 1, x_n
            else:
                rest_n -= 1
                seed_p, seed_n = x_p, x_n + 1
            if allowed is not None and not allowed & r_bit:
                continue
            charge_node()
            threshold_bits = ((x_bits | r_bit) & positive_mask) | rest_pos_bits
            if loose_prunable(seed_p, seed_n, rest_p, rest_n, threshold_bits):
                stats.loose_pruned += 1
                continue
            # Project: keep tuples whose row list contains r (bisect scan,
            # the authentic per-node cost of the pointer-based FARMER).
            kept = []
            for item, rows in tuples:
                position = bisect_left(rows, r)
                if position < len(rows) and rows[position] == r:
                    kept.append((item, rows))
            if not kept:
                continue
            # Count frequencies over the kept tuples' full row lists.
            freq: dict[int, int] = {}
            for _item, rows in kept:
                for row in rows:
                    freq[row] = freq.get(row, 0) + 1
            n_tuples = len(kept)
            closure = 0
            backward = False
            for row, count in freq.items():
                if count == n_tuples:
                    if row < r and not x_bits >> row & 1:
                        backward = True
                        break
                    closure |= 1 << row
            if backward:
                stats.backward_pruned += 1
                continue
            new_cand = sorted(
                row
                for row, count in freq.items()
                if row > r and count < n_tuples
            )
            new_x_p = bit_count(closure & positive_mask)
            new_x_n = bit_count(closure) - new_x_p
            m_p = 0
            new_cand_pos_bits = 0
            for row in new_cand:
                if row < n_positive:
                    m_p += 1
                    new_cand_pos_bits |= 1 << row
            new_r_n = len(new_cand) - m_p
            new_threshold = (closure & positive_mask) | new_cand_pos_bits
            if tight_prunable(new_x_p, new_x_n, m_p, new_r_n, new_threshold):
                stats.tight_pruned += 1
                continue
            stats.groups_emitted += 1
            emit([item for item, _rows in kept], closure, new_x_p, new_x_n)
            if new_cand:
                recurse(closure, new_x_p, new_x_n, kept, new_cand, None)

    recurse(0, 0, 0, root_tuples, list(range(view.n_rows)), first_rows)


# ---------------------------------------------------------------------------
# tree engine (prefix-tree projected transposed tables, Section 4.2)
# ---------------------------------------------------------------------------


def _walk_tree(
    view: MiningView,
    policy: SearchPolicy,
    stats: MinerStats,
    budget: _Budget,
    first_rows: Optional[int] = None,
) -> None:
    positive_mask = view.positive_mask
    n_positive = view.n_positive
    item_rows = view.item_rows
    bit_count = int.bit_count
    charge_node = budget.charge_node
    loose_prunable = policy.loose_prunable
    tight_prunable = policy.tight_prunable
    emit = policy.emit

    root_tree = PrefixTree.from_items(
        (item, sorted(iter_indices(view.item_rows[item])))
        for item in view.frequent_items
    )

    def recurse(
        x_bits: int, x_p: int, x_n: int, tree: PrefixTree, allowed: Optional[int]
    ) -> None:
        # Rows absorbed into X by a closure step remain in the projected
        # tree's paths; they are not extension candidates.
        cand = [row for row in tree.rows_present() if not x_bits >> row & 1]
        # Positive count/bitset of the not-yet-expanded candidates are
        # maintained decrementally instead of being rescanned per node.
        rest_p = 0
        rest_pos_bits = 0
        for row in cand:
            if row < n_positive:
                rest_p += 1
                rest_pos_bits |= 1 << row
        rest_n = len(cand) - rest_p
        for r in cand:
            r_bit = 1 << r
            if r < n_positive:
                rest_p -= 1
                rest_pos_bits &= ~r_bit
                seed_p, seed_n = x_p + 1, x_n
            else:
                rest_n -= 1
                seed_p, seed_n = x_p, x_n + 1
            if allowed is not None and not allowed & r_bit:
                continue
            charge_node()
            threshold_bits = ((x_bits | r_bit) & positive_mask) | rest_pos_bits
            if loose_prunable(seed_p, seed_n, rest_p, rest_n, threshold_bits):
                stats.loose_pruned += 1
                continue
            projected = tree.project(r)
            if projected.n_items == 0:
                continue
            new_items = projected.all_items()
            # Closure and backward check use the full item support sets;
            # the projected tree only keeps rows after r (Section 3's
            # projected transposed table), so earlier rows must be probed
            # against the original supports.
            closure = item_rows[new_items[0]]
            for item in new_items[1:]:
                closure &= item_rows[item]
            if closure & (r_bit - 1) & ~x_bits:
                stats.backward_pruned += 1
                continue
            freq = projected.row_frequencies()
            new_cand_rows = [
                row for row in freq if not closure >> row & 1
            ]
            new_x_p = bit_count(closure & positive_mask)
            new_x_n = bit_count(closure) - new_x_p
            m_p = 0
            new_cand_pos_bits = 0
            for row in new_cand_rows:
                if row < n_positive:
                    m_p += 1
                    new_cand_pos_bits |= 1 << row
            new_r_n = len(new_cand_rows) - m_p
            new_threshold = (closure & positive_mask) | new_cand_pos_bits
            if tight_prunable(new_x_p, new_x_n, m_p, new_r_n, new_threshold):
                stats.tight_pruned += 1
                continue
            stats.groups_emitted += 1
            emit(new_items, closure, new_x_p, new_x_n)
            if new_cand_rows:
                recurse(closure, new_x_p, new_x_n, projected, None)

    recurse(0, 0, 0, root_tree, first_rows)
