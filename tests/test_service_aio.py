"""Async front end: pipelining, coalescing, shedding, kill -9 durability."""

import json
import os
import signal
import socket
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.classifiers import RCBTClassifier
from repro.classifiers.persistence import classifier_to_payload
from repro.data import random_discretized_dataset
from repro.data.loaders import discretized_to_payload
from repro.service import AsyncReproServer, RuleService


def _request(url, body=None, method=None):
    data = json.dumps(body).encode("utf-8") if body is not None else None
    request = urllib.request.Request(
        url,
        data=data,
        method=method or ("POST" if body is not None else "GET"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, dict(response.headers), json.loads(
                response.read()
            )
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), json.loads(error.read())


def _read_response(stream):
    """Parse one HTTP response off a buffered socket file."""
    status_line = stream.readline()
    if not status_line:
        return None, {}, None
    status = int(status_line.split(b" ", 2)[1])
    headers = {}
    while True:
        line = stream.readline()
        if not line or line in (b"\r\n", b"\n"):
            break
        name, _, value = line.partition(b":")
        headers[name.strip().lower().decode()] = value.strip().decode()
    body = b""
    length = int(headers.get("content-length", "0"))
    while len(body) < length:
        chunk = stream.read(length - len(body))
        if not chunk:
            break
        body += chunk
    return status, headers, json.loads(body) if body else None


def _post_bytes(path, body: dict, host: str, port: int) -> bytes:
    payload = json.dumps(body).encode("utf-8")
    return (
        f"POST {path} HTTP/1.1\r\n"
        f"Host: {host}:{port}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(payload)}\r\n\r\n"
    ).encode("latin-1") + payload


@pytest.fixture
def model_and_dataset():
    dataset = random_discretized_dataset(n_rows=30, n_items=14, seed=5)
    model = RCBTClassifier(k=2, nl=4).fit(dataset)
    return model, dataset


class TestPipelining:
    def test_pipelined_burst_is_answered_in_order(self, model_and_dataset):
        model, dataset = model_and_dataset
        # A generous window so the whole burst lands in one coalescer
        # flush regardless of scheduler noise.
        server = AsyncReproServer(port=0, batch_delay=0.05).start()
        try:
            _request(f"{server.url}/models", body={
                "name": "m", "model": classifier_to_payload(model),
            })
            expected = model.predict_with_sources(dataset)[0]
            rows = [sorted(row) for row in dataset.rows]
            burst = b"".join(
                _post_bytes("/classify", {"model": "m", "rows": [rows[i]]},
                            server.host, server.port)
                for i in range(12)
            )
            sock = socket.create_connection(
                (server.host, server.port), timeout=30
            )
            stream = sock.makefile("rb")
            try:
                # All 12 requests hit the server before any response is
                # read; responses must come back 200, in request order.
                sock.sendall(burst)
                for i in range(12):
                    status, _, payload = _read_response(stream)
                    assert status == 200
                    assert payload["predictions"] == [expected[i]]
            finally:
                stream.close()
                sock.close()

            # The burst was coalesced: at least one predict_batch call
            # served multiple pipelined requests.
            snapshot = server.service.telemetry.snapshot()
            histogram = snapshot["latency"]["classify_batch_size"]
            assert histogram["max_seconds"] >= 2  # max batch rows
            assert histogram["count"] < 12  # fewer batches than requests
        finally:
            server.stop()

    def test_mixed_pipelined_methods_and_errors(self, model_and_dataset):
        model, _ = model_and_dataset
        server = AsyncReproServer(port=0, batch_delay=0.01).start()
        try:
            _request(f"{server.url}/models", body={
                "name": "m", "model": classifier_to_payload(model),
            })
            get = (
                f"GET /models HTTP/1.1\r\n"
                f"Host: {server.host}:{server.port}\r\n\r\n"
            ).encode("latin-1")
            bad = _post_bytes("/classify", {"model": "ghost", "rows": []},
                              server.host, server.port)
            sock = socket.create_connection(
                (server.host, server.port), timeout=30
            )
            stream = sock.makefile("rb")
            try:
                sock.sendall(get + bad + get)
                status, _, payload = _read_response(stream)
                assert status == 200 and len(payload["models"]) == 1
                status, _, payload = _read_response(stream)
                assert status == 404 and "ghost" in payload["error"]
                status, _, payload = _read_response(stream)
                assert status == 200 and len(payload["models"]) == 1
            finally:
                stream.close()
                sock.close()
        finally:
            server.stop()

    def test_malformed_requests_close_with_4xx(self):
        server = AsyncReproServer(port=0).start()
        try:
            sock = socket.create_connection(
                (server.host, server.port), timeout=30
            )
            stream = sock.makefile("rb")
            try:
                sock.sendall(b"NONSENSE\r\n\r\n")
                status, headers, _ = _read_response(stream)
                assert status == 400
                assert headers["connection"] == "close"
            finally:
                stream.close()
                sock.close()

            status, _, payload = _request(
                f"{server.url}/classify", body={"bogus": True}
            )
            assert status in (400, 404)
        finally:
            server.stop()

    def test_oversized_body_is_rejected(self):
        server = AsyncReproServer(port=0).start()
        try:
            sock = socket.create_connection(
                (server.host, server.port), timeout=30
            )
            stream = sock.makefile("rb")
            try:
                sock.sendall(
                    f"POST /classify HTTP/1.1\r\n"
                    f"Host: x\r\nContent-Length: {64 * 1024 * 1024}"
                    f"\r\n\r\n".encode("latin-1")
                )
                status, _, payload = _read_response(stream)
                assert status == 413
            finally:
                stream.close()
                sock.close()
        finally:
            server.stop()


class TestLoadShedding:
    def test_overload_returns_503_with_retry_after(self, model_and_dataset):
        model, dataset = model_and_dataset
        server = AsyncReproServer(
            port=0, max_inflight=0, retry_after_seconds=3.0
        ).start()
        try:
            server.service.register_model({
                "name": "m", "model": classifier_to_payload(model),
            })
            status, headers, payload = _request(
                f"{server.url}/classify",
                body={"model": "m",
                      "rows": [sorted(dataset.rows[0])]},
            )
            assert status == 503
            assert headers["Retry-After"] == "3"
            assert "overloaded" in payload["error"]
            assert server.service.telemetry.counter("http_shed") == 1

            # /healthz bypasses the admission gate but reports (and
            # signals, via 503) that the instance is shedding.
            status, _, health = _request(f"{server.url}/healthz")
            assert status == 503
            assert health["shedding"] is True
            assert health["status"] == "shedding"
        finally:
            server.stop()

    def test_connection_cap_sheds_new_connections(self):
        server = AsyncReproServer(port=0, max_connections=0).start()
        try:
            status, headers, payload = _request(f"{server.url}/models")
            assert status == 503
            assert "Retry-After" in headers
            assert "capacity" in payload["error"]
        finally:
            server.stop()

    def test_unshedded_server_reports_healthy(self):
        server = AsyncReproServer(port=0).start()
        try:
            status, _, health = _request(f"{server.url}/healthz")
            assert status == 200
            assert health["shedding"] is False
            assert health["queue_depth"] == 0
            assert "pool" in health
        finally:
            server.stop()


def _start_serve_subprocess(store_path, tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parents[1] / "src")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
         "--store", str(store_path), "--grace-seconds", "2"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        cwd=str(tmp_path),
    )
    url = None
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            break
        if line.startswith("serving on "):
            url = line.split()[2]
            break
    if url is None:
        process.kill()
        raise AssertionError("server subprocess never reported its url")
    return process, url


def _mined_content(result):
    content = dict(result)
    content["stats"] = {
        key: value
        for key, value in result["stats"].items()
        if key != "elapsed_seconds"
    }
    return content


class TestKillRestartDurability:
    def test_killed_server_resumes_mine_bit_identically(self, tmp_path):
        # ~3s of enumeration: plenty of window to kill the process
        # mid-mine, short enough to re-mine after restart.
        dataset = random_discretized_dataset(
            n_rows=42, n_items=90, density=0.9, seed=3
        )
        body = {
            "items": discretized_to_payload(dataset),
            "consequent": 1,
            "minsup": 1,
            "k": 30,
        }
        store = tmp_path / "jobs.db"
        process, url = _start_serve_subprocess(store, tmp_path)
        try:
            status, _, submitted = _request(f"{url}/mine", body=body)
            assert status == 202
            job_id = submitted["job_id"]
            deadline = time.monotonic() + 15.0
            while time.monotonic() < deadline:
                status, _, payload = _request(f"{url}/jobs/{job_id}")
                if payload["status"] == "running":
                    break
                time.sleep(0.02)
            assert payload["status"] == "running"
        finally:
            # SIGKILL: no drain, no checkpoint — the WAL must carry it.
            process.kill()
            process.wait(timeout=10)

        process, url = _start_serve_subprocess(store, tmp_path)
        try:
            deadline = time.monotonic() + 60.0
            final = None
            while time.monotonic() < deadline:
                status, _, payload = _request(f"{url}/jobs/{job_id}")
                assert status == 200
                if payload["status"] in ("done", "failed", "cancelled"):
                    final = payload
                    break
                time.sleep(0.1)
            assert final is not None, "recovered job never finished"
            assert final["status"] == "done"

            reference_service = RuleService()
            try:
                ref_submitted = reference_service.submit_mine(body)
                ref_deadline = time.monotonic() + 60.0
                while time.monotonic() < ref_deadline:
                    reference = reference_service.job_status(
                        ref_submitted["job_id"]
                    )
                    if reference["status"] == "done":
                        break
                    time.sleep(0.1)
                assert _mined_content(final["result"]) == _mined_content(
                    reference["result"]
                )
            finally:
                reference_service.shutdown()
        finally:
            process.terminate()
            process.wait(timeout=30)

    def test_sigterm_drains_and_exits_cleanly(self, tmp_path):
        store = tmp_path / "jobs.db"
        process, url = _start_serve_subprocess(store, tmp_path)
        status, _, health = _request(f"{url}/healthz")
        assert status == 200
        process.send_signal(signal.SIGTERM)
        output, _ = process.communicate(timeout=30)
        assert process.returncode == 0
        assert "stopped cleanly" in output
