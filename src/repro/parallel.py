"""Process-pool mining backend: first-level sharding of the enumeration tree.

The row enumeration tree of Figure 2 is embarrassingly partitionable at
its first level: every node lies in exactly one first-row subtree, and
backward pruning guarantees each closed group is emitted only in the
subtree of its smallest row.  This module exploits that invariant:

* :func:`plan_shards` splits the first enumeration level into position
  bitsets (singleton shards for the large early subtrees, contiguous
  chunks for the long tail) that together cover every root exactly once;
* each shard is mined in a worker process by a full
  :class:`~repro.core.topk_miner.TopkPolicy` (or
  :class:`~repro.baselines.farmer.FarmerPolicy`) restricted with
  ``run_enumeration(..., first_rows=shard)``;
* the per-shard results are merged in ascending shard order, which
  reproduces the serial result *exactly* (bit-identical rule groups,
  per-row lists and ordering) — the correctness argument is spelled out
  in DESIGN.md §7.

Why per-shard mining is conservative: a shard's :class:`TopkPolicy` is
seeded from the same single-item ``TopKList`` initialization as the
serial run, and its dynamic thresholds afterwards reflect only emissions
from its own subtrees — a *subset* of what the serial run has seen by
the corresponding node.  Offers only ever tighten thresholds, so every
shard prunes at most what the serial run prunes and emits a superset of
the serial emissions from its subtrees.  The final merge (offering each
shard's list entries in ascending shard order into fresh seeded lists)
then discards exactly the extras.

Execution goes through a persistent :class:`MinerPool` (DESIGN.md §9):
worker processes are started once and kept warm across mining calls, so
repeated mines — RCBT's per-class requests, service ``/mine`` jobs, the
bench harness — pay the fork/spawn tax once instead of per call.
Datasets ship with each task as a pickled blob tagged by an identity
token; workers cache the last few decoded datasets by token, so every
shard (and every later request over the same dataset) after the first
decodes nothing and reuses the worker-side memoized
:meth:`~repro.core.view.MiningView.cached` views.

``n_jobs="auto"`` asks the adaptive planner to choose between serial and
parallel execution: it estimates the enumeration work from the view's
:class:`~repro.core.view.SupportIndex` (already built for the serial
single-item initialization) and falls back to serial below a calibrated
threshold where warm-pool dispatch plus the merge would eat the speedup.

Deviation: ``node_budget`` is applied per shard rather than globally (a
shared atomic counter would serialize the workers); ``time_budget`` and
``cancel`` are global, bridged into the workers through a slot of a
shared flag array polled on the same
:data:`~repro.core.enumeration.POLL_STRIDE` node stride as the serial
budget checks.

Fault tolerance (DESIGN.md §10): worker death — an OOM kill, a segfault,
a container runtime reaping a process — is a retried, observable event,
not a request-killing one.  :func:`_execute` supervises shard futures as
they complete; when the process pool breaks it heals the pool through
the generation-replacement machinery of :class:`MinerPool` and resubmits
only the failed shards, with capped attempts and exponential backoff,
before degrading losslessly to serial in-process execution (the merge is
bit-identical regardless of where shards ran).  Every recovery path is
exercised deterministically through :class:`FaultPlan`, which can kill,
hang, delay, or raise inside a chosen shard on a chosen attempt — either
passed explicitly or via the ``REPRO_FAULT`` environment variable for
subprocess tests.
"""

from __future__ import annotations

import atexit
import itertools
import multiprocessing
import os
import pickle
import signal
import threading
import time
import weakref
from collections import OrderedDict
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Optional, Sequence

from .baselines.farmer import FarmerPolicy, FarmerResult
from .core.backends import resolve_backend
from .core.enumeration import POLL_STRIDE, MinerStats, run_enumeration
from .core.topk_miner import TopkPolicy, TopkResult, maybe_check_result
from .core.view import MiningView
from .errors import MiningBudgetExceeded

if TYPE_CHECKING:  # pragma: no cover - import is for annotations only
    from .data.dataset import DiscretizedDataset

__all__ = [
    "AUTO_JOBS",
    "MineRequest",
    "FarmerRequest",
    "FAULT_ANY",
    "Fault",
    "FaultPlan",
    "InjectedFault",
    "MinerPool",
    "get_pool",
    "shutdown_pool",
    "pool_stats",
    "resolve_n_jobs",
    "plan_shards",
    "plan_auto_workers",
    "estimate_topk_work",
    "estimate_farmer_work",
    "merge_stats",
    "mine_topk_sharded",
    "mine_topk_parallel",
    "mine_farmer_parallel",
    "run_hybrid_partitions",
    "parallel_map",
    "results_equal",
]

# Sentinel accepted everywhere an ``n_jobs`` is: let the planner decide.
AUTO_JOBS = "auto"

# How often (seconds) the parent watcher thread checks the user's cancel
# token and the global deadline.
_WATCH_INTERVAL_SECONDS = 0.02

# Cancellation slots in the pool's shared flag array.  Each concurrent
# _execute call that carries a deadline or cancel token leases one slot
# for its lifetime; 64 concurrent cancellable mines per process is far
# beyond what the service's job queue admits.
_POOL_CANCEL_SLOTS = 64

# How long a cancellable call waits for a free slot before degrading to
# watcher-free serial in-process execution (where the caller's token is
# polled directly, so no slot is needed).
_SLOT_WAIT_SECONDS = 1.0

# Crash recovery: total pool attempts per shard before the supervisor
# gives up on the process pool and runs the shard serially in-process.
_MAX_SHARD_ATTEMPTS = 2

# Backoff between resubmission rounds: base * 2**(attempt - 1) seconds.
_RETRY_BACKOFF_SECONDS = 0.05

# Upper bound of a "hang" fault that has no cancel token to wake it —
# keeps a misconfigured fault plan from deadlocking a test suite.
_HANG_CAP_SECONDS = 10.0

# Worker-side cache of decoded datasets, keyed by the parent's identity
# token.  Small: each entry pins a full dataset (and, via the view cache,
# its SupportIndex memos) in every worker.
_WORKER_DATASET_CAP = 4

# Planner thresholds, in abstract work units (see estimate_topk_work /
# estimate_farmer_work).  Calibrated on the bench datasets: warm-pool
# dispatch plus the ascending-order merge costs ~10-30 ms, so parallel
# only pays off once the serial mine is well past ~0.1 s.  At the
# calibration point the ALL-AML top-100 mine (~156k units) runs in
# ~0.04 s serial (stay serial) while the PC FARMER mine (~350k units)
# takes seconds (go parallel).
_AUTO_TOPK_SERIAL_UNITS = 400_000
_AUTO_FARMER_SERIAL_UNITS = 100_000


@dataclass(frozen=True)
class MineRequest:
    """One MineTopkRGS mining job, shardable across workers.

    ``backend`` is the bitset-backend *name* (never an instance — the
    request ships to worker processes as part of the task pickle), or
    ``None`` for each process's own environment/default resolution.
    """

    consequent: int
    minsup: int
    k: int = 1
    engine: str = "bitset"
    initialize_single_items: bool = True
    dynamic_minsup: bool = True
    use_topk_pruning: bool = True
    node_budget: Optional[int] = None
    backend: Optional[str] = None


@dataclass(frozen=True)
class FarmerRequest:
    """One FARMER mining job, shardable across workers."""

    consequent: int
    minsup: int
    minconf: float = 0.0
    engine: str = "table"
    node_budget: Optional[int] = None
    max_groups: Optional[int] = None
    min_chi_square: float = 0.0
    backend: Optional[str] = None


class InjectedFault(RuntimeError):
    """Raised by a ``raise``-mode :class:`Fault` inside a worker."""


# Recognized fault modes: kill the worker process outright, raise an
# ordinary exception, hang cooperatively until cancelled, or sleep for a
# fixed delay before mining normally.
_FAULT_MODES = ("kill", "raise", "hang", "delay")

# Wildcard shard/attempt in a fault spec ("*" in the string form).
FAULT_ANY = -1


@dataclass(frozen=True)
class Fault:
    """One injected fault: ``mode`` fires on ``(shard, attempt)``.

    ``shard`` is the index of the shard job within one :func:`_execute`
    call (for a single-request mine this is the :func:`plan_shards`
    index); ``attempt`` is the supervisor's resubmission count for that
    shard (0 = first run).  Either may be :data:`FAULT_ANY` to match
    every shard / attempt.  ``seconds`` parameterizes ``delay`` and
    ``hang`` (a ``hang`` with no ``seconds`` is capped at
    :data:`_HANG_CAP_SECONDS` so a missing cancel token cannot deadlock
    a test run).
    """

    mode: str
    shard: int = 0
    attempt: int = 0
    seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.mode not in _FAULT_MODES:
            raise ValueError(
                f"unknown fault mode {self.mode!r}; expected one of "
                f"{_FAULT_MODES}"
            )

    def matches(self, shard: int, attempt: int) -> bool:
        return (self.shard in (FAULT_ANY, shard)
                and self.attempt in (FAULT_ANY, attempt))


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic set of :class:`Fault` entries for one mine.

    The string form (accepted by :meth:`parse` and the ``REPRO_FAULT``
    environment variable) is ``;``-separated entries of
    ``mode@shard.attempt[:seconds]``, with ``*`` as a shard/attempt
    wildcard::

        kill@0.0              crash the worker mining shard 0, attempt 0
        kill@0.0;kill@0.1     ...and again on its retry
        hang@0.0:30           hang shard 0 for up to 30 s (or until cancel)
        delay@*.0:0.5         delay every first-attempt shard by 0.5 s

    Faults are applied only inside pool worker processes — the parent's
    serial fallback ignores the plan, so a ``kill`` can never take down
    the caller.  This is a testing hook: it exists so every recovery
    path of the supervisor is exercised in CI rather than trusted.
    """

    faults: tuple[Fault, ...] = ()

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        faults = []
        for raw in spec.split(";"):
            raw = raw.strip()
            if not raw:
                continue
            mode, sep, where = raw.partition("@")
            if not sep:
                raise ValueError(
                    f"bad fault entry {raw!r}: expected "
                    "mode@shard.attempt[:seconds]"
                )
            seconds: Optional[float] = None
            if ":" in where:
                where, _, tail = where.partition(":")
                seconds = float(tail)
            shard_text, _, attempt_text = where.partition(".")

            def _index(text: str) -> int:
                return FAULT_ANY if text == "*" else int(text)

            faults.append(
                Fault(
                    mode=mode,
                    shard=_index(shard_text),
                    attempt=_index(attempt_text or "0"),
                    seconds=seconds,
                )
            )
        return cls(tuple(faults))

    @classmethod
    def from_env(cls) -> Optional["FaultPlan"]:
        """The plan in ``REPRO_FAULT``, or None when unset/empty."""
        spec = os.environ.get("REPRO_FAULT", "")
        return cls.parse(spec) if spec else None

    def find(self, shard: int, attempt: int) -> Optional[Fault]:
        for fault in self.faults:
            if fault.matches(shard, attempt):
                return fault
        return None


def resolve_n_jobs(n_jobs: Optional[int]) -> int:
    """Translate a user ``n_jobs`` into a concrete worker count.

    ``None`` or ``0`` mean "all cores"; negative values count back from
    the core count (``-1`` = all cores, ``-2`` = all but one, the joblib
    convention); positive values are used as given.  The :data:`AUTO_JOBS`
    sentinel is workload-dependent and resolved by the mining entry
    points themselves (via :func:`plan_auto_workers`), not here.
    """
    if n_jobs == AUTO_JOBS:
        raise ValueError(
            "n_jobs='auto' is resolved per workload by the mining entry "
            "points; resolve_n_jobs only handles integers"
        )
    cores = os.cpu_count() or 1
    if n_jobs is None or n_jobs == 0:
        return cores
    if n_jobs < 0:
        return max(1, cores + 1 + n_jobs)
    return n_jobs


def plan_shards(n_rows: int, n_jobs: int) -> list[int]:
    """Partition the first enumeration level into shard bitsets.

    First-level subtrees shrink steeply with the root position (row ``r``
    can only extend into rows after ``r``), so equal-width chunks would
    leave one worker holding almost the whole tree.  Instead the first
    ``2 * n_jobs`` roots become singleton shards (the big subtrees, each
    individually schedulable) and the remaining roots are split into at
    most ``2 * n_jobs`` contiguous chunks; the executor then balances the
    shards dynamically.

    Returns masks in ascending first-root order; their union is exactly
    ``mask_below(n_rows)`` and they are pairwise disjoint — the invariant
    the merge step relies on.
    """
    if n_rows <= 0:
        return []
    if n_jobs <= 1:
        return [(1 << n_rows) - 1]
    singles = min(n_rows, 2 * n_jobs)
    masks = [1 << position for position in range(singles)]
    rest = n_rows - singles
    if rest > 0:
        n_chunks = min(rest, 2 * n_jobs)
        base, extra = divmod(rest, n_chunks)
        start = singles
        for index in range(n_chunks):
            size = base + (1 if index < extra else 0)
            masks.append(((1 << size) - 1) << start)
            start += size
    return masks


def merge_stats(shard_stats: Sequence[MinerStats], engine: str) -> MinerStats:
    """Combine per-shard counters into one :class:`MinerStats`.

    Node/prune/emit counters sum; ``elapsed_seconds`` is the maximum
    (shards overlap in wall-clock time); ``completed`` is the conjunction.
    Note the summed ``nodes_visited`` of a dynamic-threshold top-k run is
    >= the serial count: each shard starts from the seeded thresholds and
    never benefits from groups found in other shards (DESIGN.md §7).
    """
    total = MinerStats(engine=engine)
    for stats in shard_stats:
        total.nodes_visited += stats.nodes_visited
        total.groups_emitted += stats.groups_emitted
        total.loose_pruned += stats.loose_pruned
        total.tight_pruned += stats.tight_pruned
        total.backward_pruned += stats.backward_pruned
        total.elapsed_seconds = max(total.elapsed_seconds, stats.elapsed_seconds)
        total.completed = total.completed and stats.completed
        total.degraded = total.degraded or stats.degraded
    return total


# -- worker side -------------------------------------------------------------

# The pool's shared cancellation flag array, installed once per worker by
# _pool_worker_init.  A flag is a plain shared-memory byte, so polling it
# on every POLL_STRIDE-node budget check costs a memory read — no
# semaphore, no throttling, and cancellation latency is bounded by the
# node stride alone.
_WORKER_SLOTS = None

# token -> decoded dataset, most recently used last.
_WORKER_DATASETS: "OrderedDict[str, DiscretizedDataset]" = OrderedDict()


def _pool_worker_init(slots) -> None:
    global _WORKER_SLOTS
    _WORKER_SLOTS = slots
    # A terminal Ctrl-C delivers SIGINT to the whole foreground process
    # group; warm workers idling on the call queue would die with a
    # KeyboardInterrupt traceback each.  Their lifecycle belongs to the
    # parent (MinerPool.close / atexit), so ignore the signal here —
    # cooperative cancellation flows through the slot array, not signals.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (OSError, ValueError):  # non-main thread or exotic platform
        pass


class _SlotCancel:
    """Cancel token reading one slot of the shared flag array."""

    __slots__ = ("_slots", "_index")

    def __init__(self, slots, index: int) -> None:
        self._slots = slots
        self._index = index

    def is_set(self) -> bool:
        return self._slots[self._index] != 0


def _worker_dataset(token: str, blob: bytes) -> "DiscretizedDataset":
    dataset = _WORKER_DATASETS.get(token)
    if dataset is None:
        dataset = pickle.loads(blob)
        _WORKER_DATASETS[token] = dataset
        while len(_WORKER_DATASETS) > _WORKER_DATASET_CAP:
            _WORKER_DATASETS.popitem(last=False)
    else:
        _WORKER_DATASETS.move_to_end(token)
    return dataset


def _apply_fault(fault: Fault, cancel) -> None:
    """Perform one injected fault inside a worker process."""
    if fault.mode == "kill":
        # os._exit skips every handler and atexit hook — the closest
        # in-process stand-in for an OOM kill or a runtime reaping the
        # worker.  The parent sees a BrokenProcessPool.
        os._exit(86)
    if fault.mode == "raise":
        raise InjectedFault(
            f"injected fault on shard {fault.shard} attempt {fault.attempt}"
        )
    if fault.mode == "delay":
        time.sleep(fault.seconds if fault.seconds is not None else 0.05)
        return
    # "hang": spin like a stuck enumeration that still reaches its
    # budget polls — wakes when the cancel slot is set, bounded so a
    # missing token cannot deadlock the run.
    stop_at = time.monotonic() + (
        fault.seconds if fault.seconds is not None else _HANG_CAP_SECONDS
    )
    while time.monotonic() < stop_at:
        if cancel is not None and cancel.is_set():
            return
        time.sleep(0.005)


def _run_shard(kind: str, request, shard_mask: int, token: str, blob: bytes,
               slot: int, shard_index: int = 0, attempt: int = 0,
               fault: Optional[FaultPlan] = None):
    """Worker entry point: mine one shard; returns (payload, stats).

    The dataset arrives as ``(token, blob)``: the blob is decoded at most
    once per worker and token, so every shard after the first reuses the
    cached dataset and — through ``MiningView.cached`` — the memoized
    view and its ``SupportIndex`` root-level results.

    ``shard_index``/``attempt`` identify this execution to the fault
    plan (the explicit ``fault`` argument, or ``REPRO_FAULT`` from the
    environment the worker inherited) — production calls carry neither
    and pay a single ``None`` check.
    """
    dataset = _worker_dataset(token, blob)
    cancel = (
        _SlotCancel(_WORKER_SLOTS, slot)
        if slot >= 0 and _WORKER_SLOTS is not None
        else None
    )
    plan = fault if fault is not None else FaultPlan.from_env()
    if plan is not None:
        entry = plan.find(shard_index, attempt)
        if entry is not None:
            _apply_fault(entry, cancel)
    return _mine_shard(kind, request, shard_mask, dataset, cancel)


def _mine_shard(kind: str, request, shard_mask: int, dataset, cancel,
                time_budget: Optional[float] = None):
    """Mine one shard of ``dataset``; returns (payload, stats).

    ``payload`` is a list of per-position group lists for top-k requests
    and a flat group list for FARMER requests.  Groups stay in position
    space — the parent translates to row ids once, after merging.

    Shared by the worker entry (:func:`_run_shard`, cancel = slot token)
    and the parent's serial fallback (caller's token polled directly,
    remaining global deadline passed as ``time_budget``).

    The ``"hybrid"`` kind mines one column partition of a hybrid run:
    ``request`` is a :class:`~repro.core.hybrid.HybridPartitionRequest`
    carrying its own rows (or spill file), ``dataset`` is the shared
    :class:`~repro.core.hybrid.PartitionCatalog`, and ``shard_mask`` is
    unused — a partition is a whole dataset, not a row shard.
    """
    if kind == "hybrid":
        from .core.hybrid import mine_hybrid_partition

        return mine_hybrid_partition(
            request, dataset, cancel=cancel, time_budget=time_budget
        )
    view = MiningView.cached(
        dataset, request.consequent, request.minsup, backend=request.backend
    )
    if kind == "topk":
        policy = TopkPolicy(
            view,
            request.k,
            initialize_single_items=request.initialize_single_items,
            dynamic_minsup=request.dynamic_minsup,
            use_topk_pruning=request.use_topk_pruning,
        )
    else:
        policy = FarmerPolicy(
            view,
            minconf=request.minconf,
            max_groups=request.max_groups,
            min_chi_square=request.min_chi_square,
        )
    try:
        stats = run_enumeration(
            view,
            policy,
            engine=request.engine,
            node_budget=request.node_budget,
            time_budget=time_budget,
            cancel=cancel,
            first_rows=shard_mask,
        )
    except MiningBudgetExceeded as overrun:
        stats = overrun.stats
    if kind == "topk":
        return [list(topk.groups) for topk in policy.lists], stats
    return list(policy.groups), stats


# -- parent side -------------------------------------------------------------


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


class MinerPool:
    """A lazily started, persistent pool of warm mining workers.

    The first mining call starts the worker processes; later calls reuse
    them, so the per-call cost drops from fork + import + dataset decode
    to task dispatch alone.  The pool grows (never shrinks) to the
    largest worker count requested so far; growing replaces the executor
    — in-flight shards on the old one still finish — and bumps
    ``started``.  :meth:`close` shuts the workers down; the next use
    transparently starts a fresh generation, which also keeps the pool
    safe to use after ``os.fork`` (the module resets the default pool in
    forked children).

    Cancellation plumbing lives here too: the pool owns a small shared
    flag array created before the first worker (so both fork and spawn
    contexts inherit it), and each cancellable mining call leases one
    slot of it for its lifetime.

    Attributes:
        started: executor generations created (cold starts + grows +
            post-failure heals).
        reuses: calls served by an already-running executor.
        failure_restarts: generations retired because a worker died
            (:meth:`heal`).
    """

    def __init__(self, max_workers: Optional[int] = None) -> None:
        self._ctx = _mp_context()
        self._lock = threading.Lock()
        self._slot_freed = threading.Condition(self._lock)
        self._executor: Optional[ProcessPoolExecutor] = None
        self._size = 0
        self._max_workers = max_workers
        self._slots = None
        self._free_slots: list[int] = []
        self.started = 0
        self.reuses = 0
        self.failure_restarts = 0

    @property
    def size(self) -> int:
        """Current worker-process count (0 when not started)."""
        return self._size

    def _ensure_slots(self) -> None:
        if self._slots is None:
            self._slots = self._ctx.RawArray("b", _POOL_CANCEL_SLOTS)
            self._free_slots = list(range(_POOL_CANCEL_SLOTS))

    def executor(self, n_workers: int) -> ProcessPoolExecutor:
        """Return a running executor with at least ``n_workers`` workers."""
        with self._lock:
            wanted = max(1, int(n_workers))
            if self._max_workers is not None:
                wanted = min(wanted, self._max_workers)
            self._ensure_slots()
            current = self._executor
            if (
                current is not None
                and self._size >= wanted
                and not getattr(current, "_broken", False)
            ):
                self.reuses += 1
                return current
            if current is not None and self._size > wanted:
                # Broken executor (a worker died); restart at the old size.
                wanted = self._size
            replacement = ProcessPoolExecutor(
                max_workers=wanted,
                mp_context=self._ctx,
                initializer=_pool_worker_init,
                initargs=(self._slots,),
            )
            self._executor = replacement
            self._size = wanted
            self.started += 1
            if current is not None:
                # In-flight tasks on the old executor still complete;
                # wait=False only stops it from accepting new work.
                current.shutdown(wait=False)
            return replacement

    def heal(self) -> bool:
        """Retire a broken executor so the next use starts fresh.

        Called by the supervisor after a worker died mid-shard.  Returns
        True when a generation was actually retired (counted in
        ``failure_restarts`` and the module-wide
        ``pool_restarts_on_failure``); a healthy executor is left alone
        and False is returned — e.g. when a concurrent call already
        healed the pool.
        """
        with self._lock:
            current = self._executor
            if current is None or not getattr(current, "_broken", False):
                # Nothing running, or the executor is healthy (e.g. a
                # concurrent call already healed): leave it alone.
                return False
            self._executor = None
            self._size = 0
            self.failure_restarts += 1
        _count_recovery("pool_restarts_on_failure", 1)
        # The executor is broken: shutdown only reaps what is left.
        current.shutdown(wait=False)
        return True

    def acquire_slot(self, timeout: Optional[float] = _SLOT_WAIT_SECONDS) -> int:
        """Lease a cancellation slot (cleared); pair with release_slot.

        When every slot is leased, waits up to ``timeout`` seconds for a
        release (``None`` waits indefinitely) and returns ``-1`` once the
        wait expires — callers degrade to watcher-free serial execution
        instead of surfacing an error to the client.
        """
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        with self._slot_freed:
            self._ensure_slots()
            while not self._free_slots:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return -1
                self._slot_freed.wait(remaining)
            index = self._free_slots.pop()
            self._slots[index] = 0
            return index

    def cancel_slot(self, index: int) -> None:
        """Signal the workers polling ``index`` to stop."""
        self._slots[index] = 1

    def release_slot(self, index: int) -> None:
        with self._slot_freed:
            self._slots[index] = 0
            self._free_slots.append(index)
            self._slot_freed.notify()

    def close(self, wait: bool = True) -> None:
        """Shut the workers down.  The pool restarts on next use."""
        with self._lock:
            executor = self._executor
            self._executor = None
            self._size = 0
        if executor is not None:
            executor.shutdown(wait=wait)


_DEFAULT_POOL: Optional[MinerPool] = None
_DEFAULT_POOL_LOCK = threading.Lock()

# Planner decisions (n_jobs="auto" resolving to serial) are counted
# globally, not per pool: the fallback path never touches the pool.
_PLANNER_LOCK = threading.Lock()
_PLANNER_SERIAL_FALLBACKS = 0

# Crash-recovery counters, process-wide (every pool, every _execute):
# shard_retries            — shard jobs resubmitted after worker loss;
# pool_restarts_on_failure — executor generations retired by heal();
# serial_degradations      — _execute calls that ran shards serially
#                            in-process (retries exhausted, or no
#                            cancellation slot free within the wait).
_RECOVERY_LOCK = threading.Lock()
_RECOVERY = {
    "shard_retries": 0,
    "pool_restarts_on_failure": 0,
    "serial_degradations": 0,
}


def _count_recovery(name: str, amount: int = 1) -> None:
    with _RECOVERY_LOCK:
        _RECOVERY[name] += amount


def get_pool() -> MinerPool:
    """The process-wide default :class:`MinerPool` (created on first use)."""
    global _DEFAULT_POOL
    with _DEFAULT_POOL_LOCK:
        if _DEFAULT_POOL is None:
            _DEFAULT_POOL = MinerPool()
            atexit.register(_DEFAULT_POOL.close)
        return _DEFAULT_POOL


def shutdown_pool(wait: bool = True) -> None:
    """Close the default pool's workers (it restarts on next use)."""
    pool = _DEFAULT_POOL
    if pool is not None:
        pool.close(wait=wait)


def pool_stats() -> dict:
    """Counters for telemetry: pool lifecycle, planner and recovery.

    The recovery counters (``shard_retries``,
    ``pool_restarts_on_failure``, ``serial_degradations``) are
    process-wide — they aggregate over every pool instance, matching the
    service's one-process deployment; the pool counters describe the
    default pool.
    """
    pool = _DEFAULT_POOL
    with _RECOVERY_LOCK:
        recovery = dict(_RECOVERY)
    return {
        "miner_pool_started": pool.started if pool is not None else 0,
        "miner_pool_reuses": pool.reuses if pool is not None else 0,
        "planner_serial_fallbacks": _PLANNER_SERIAL_FALLBACKS,
        **recovery,
    }


def _reset_default_pool_after_fork() -> None:
    # A forked child inherits a pool whose processes belong to the
    # parent; drop it so the child lazily starts its own.  (This also
    # fires in the pool's own fork-context workers, which is exactly
    # right — they must not submit to the parent's executor.)
    global _DEFAULT_POOL, _DEFAULT_POOL_LOCK
    _DEFAULT_POOL_LOCK = threading.Lock()
    _DEFAULT_POOL = None


if hasattr(os, "register_at_fork"):  # pragma: no branch - POSIX containers
    os.register_at_fork(after_in_child=_reset_default_pool_after_fork)


# Parent-side dataset identity tokens.  The same dataset *object* keeps
# the same token (and pickled blob) across calls, which is what lets the
# workers' token-keyed cache skip decoding; a new or mutated-and-reloaded
# dataset object gets a fresh token.  Datasets are treated as immutable
# once built, as everywhere else in the package.
_DATASET_TOKENS: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
_DATASET_LOCK = threading.Lock()
_TOKEN_COUNTER = itertools.count(1)


def _dataset_payload(dataset: "DiscretizedDataset") -> tuple[str, bytes]:
    with _DATASET_LOCK:
        entry = _DATASET_TOKENS.get(dataset)
        if entry is None:
            token = f"{os.getpid()}-{next(_TOKEN_COUNTER)}"
            blob = pickle.dumps(dataset, protocol=pickle.HIGHEST_PROTOCOL)
            entry = (token, blob)
            _DATASET_TOKENS[dataset] = entry
        return entry


# -- adaptive planner --------------------------------------------------------


def estimate_topk_work(view: MiningView, k: int) -> int:
    """Abstract work units for one top-k mine over ``view``.

    ``support_mass`` (the summed support of all frequent items, free from
    the view's :class:`SupportIndex`) tracks how much intersection work
    each enumeration node costs; the ``1 + k`` factor tracks how deep the
    dynamic thresholds let the tree grow before top-k pruning bites
    (k=1 trees collapse almost immediately, k=100 trees do not).
    """
    return view.support_index().support_mass * (1 + k)


def estimate_farmer_work(view: MiningView) -> int:
    """Abstract work units for one FARMER mine over ``view``.

    FARMER has no top-k pruning, so the tree size scales with the number
    of enumerable rows instead of ``k``.
    """
    return view.support_index().support_mass * max(1, view.n_rows)


def plan_auto_workers(work_units: int, serial_threshold: int) -> int:
    """Resolve ``n_jobs="auto"``: 1 (serial) or all cores.

    Serial when the machine has a single core or the estimated work is
    below ``serial_threshold`` — there the warm-pool dispatch and merge
    overhead (~tens of milliseconds) rivals the mine itself.  Every
    serial decision increments the ``planner_serial_fallbacks`` counter
    surfaced by :func:`pool_stats`.
    """
    global _PLANNER_SERIAL_FALLBACKS
    cores = os.cpu_count() or 1
    if cores <= 1 or work_units < serial_threshold:
        with _PLANNER_LOCK:
            _PLANNER_SERIAL_FALLBACKS += 1
        return 1
    return cores


def _is_worker_loss(error: BaseException) -> bool:
    """True for errors meaning "a worker process died", not "the shard
    raised": those shards are retryable on a healed pool."""
    if isinstance(error, BrokenExecutor):
        return True
    # Older ProcessPoolExecutor paths surface a lost worker as a bare
    # RuntimeError carrying the BrokenProcessPool message.
    return isinstance(error, RuntimeError) and "terminated abruptly" in str(
        error
    )


def _run_shard_inline(kind: str, request, shard_mask: int, dataset, cancel,
                      deadline: Optional[float]):
    """Serial in-process execution of one shard (the degradation path).

    The caller's cancel token is polled directly by the enumeration
    budget checks — no slot, no watcher thread — and the remaining
    global deadline becomes this shard's ``time_budget``.  Fault plans
    are deliberately not consulted: an injected ``kill`` must never take
    down the calling process.
    """
    time_budget = None
    if deadline is not None:
        time_budget = max(deadline - time.monotonic(), 1e-9)
    return _mine_shard(kind, request, shard_mask, dataset, cancel,
                       time_budget=time_budget)


def _run_attempt(
    pool: MinerPool,
    jobs: Sequence[tuple[str, object, int]],
    remaining: Sequence[int],
    outputs: list,
    n_workers: int,
    token: str,
    blob: bytes,
    slot: int,
    attempt: int,
    fault: Optional[FaultPlan],
) -> list[int]:
    """Submit one pool attempt of ``remaining``; fill ``outputs``.

    Outcomes are gathered as they complete, not in submission order.
    Returns the indices lost to worker death (retryable).  A shard that
    *raised* is a hard failure: every not-yet-started sibling future is
    cancelled immediately (no wasted CPU, no unobserved exceptions) and
    the smallest-index error is re-raised.
    """
    futures: dict = {}
    lost: list[int] = []
    hard: list[tuple[int, BaseException]] = []
    try:
        executor = pool.executor(min(n_workers, len(remaining)))
        for index in remaining:
            kind, request, shard_mask = jobs[index]
            futures[
                executor.submit(_run_shard, kind, request, shard_mask, token,
                                blob, slot, index, attempt, fault)
            ] = index
    except BrokenExecutor:
        # The pool broke while submitting; everything unsubmitted is
        # lost, and the submitted futures fail below with the rest.
        lost.extend(index for index in remaining if index not in
                    set(futures.values()))
    for future in as_completed(futures):
        index = futures[future]
        try:
            outputs[index] = future.result()
        except BaseException as error:  # noqa: BLE001 - sorted below
            if _is_worker_loss(error):
                lost.append(index)
            elif future.cancelled():
                lost.append(index)  # cancelled by a hard failure below
            else:
                hard.append((index, error))
                for pending in futures:
                    pending.cancel()
    if hard:
        hard.sort(key=lambda pair: pair[0])
        raise hard[0][1]
    return sorted(lost)


def _execute(
    dataset: "DiscretizedDataset",
    jobs: Sequence[tuple[str, object, int]],
    n_jobs: int,
    time_budget: Optional[float] = None,
    cancel=None,
    pool: Optional[MinerPool] = None,
    fault: Optional[FaultPlan] = None,
    max_attempts: int = _MAX_SHARD_ATTEMPTS,
) -> tuple[list[tuple[object, MinerStats]], dict]:
    """Run ``(kind, request, shard_mask)`` jobs on the warm miner pool.

    Returns ``(outputs, recovery)``: outputs in submission order, and a
    recovery summary for this call (``shard_retries``, ``pool_restarts``,
    ``serial_degradations``, ``degraded``).  ``time_budget`` / ``cancel``
    are bridged to the workers through a leased slot of the pool's shared
    flag array, set by a watcher thread in this process; workers poll it
    cooperatively and return their partial results with
    ``stats.completed`` False.

    Crash recovery: shards whose worker died are resubmitted on a healed
    pool with exponential backoff, up to ``max_attempts`` total pool
    attempts each, then executed serially in this process — the merge
    step downstream is agnostic to where a shard ran, so degradation is
    lossless.  No ``BrokenProcessPool`` ever escapes to the caller.
    """
    recovery = {
        "shard_retries": 0,
        "pool_restarts": 0,
        "serial_degradations": 0,
        "degraded": False,
    }
    if not jobs:
        return [], recovery
    if pool is None:
        pool = get_pool()
    token, blob = _dataset_payload(dataset)
    deadline = (
        time.monotonic() + time_budget if time_budget is not None else None
    )
    outputs: list = [None] * len(jobs)

    def _degrade_to_serial(indices: Sequence[int]) -> None:
        _count_recovery("serial_degradations", 1)
        recovery["serial_degradations"] += 1
        recovery["degraded"] = True
        for index in indices:
            kind, request, shard_mask = jobs[index]
            outputs[index] = _run_shard_inline(
                kind, request, shard_mask, dataset, cancel, deadline
            )

    slot = -1
    watcher: Optional[threading.Thread] = None
    stop_watching = threading.Event()
    if time_budget is not None or cancel is not None:
        slot = pool.acquire_slot(timeout=_SLOT_WAIT_SECONDS)
        if slot < 0:
            # Every cancellation slot stayed leased past the bounded
            # wait: degrade to watcher-free serial execution instead of
            # failing the mine (pre-fix this raised and the service
            # returned a 500 on the 65th concurrent cancellable mine).
            _degrade_to_serial(range(len(jobs)))
            return outputs, recovery
        if cancel is not None and cancel.is_set():
            pool.cancel_slot(slot)
        else:
            def _watch() -> None:
                while not stop_watching.wait(_WATCH_INTERVAL_SECONDS):
                    if cancel is not None and cancel.is_set():
                        pool.cancel_slot(slot)
                        return
                    if deadline is not None and time.monotonic() > deadline:
                        pool.cancel_slot(slot)
                        return

            watcher = threading.Thread(
                target=_watch, name="repro-parallel-watch", daemon=True
            )
            watcher.start()
    try:
        remaining = list(range(len(jobs)))
        attempt = 0
        while remaining:
            if attempt >= max_attempts:
                # Retries exhausted: finish the surviving shards here.
                _degrade_to_serial(remaining)
                break
            if attempt > 0:
                _count_recovery("shard_retries", len(remaining))
                recovery["shard_retries"] += len(remaining)
                time.sleep(_RETRY_BACKOFF_SECONDS * (2 ** (attempt - 1)))
            lost = _run_attempt(pool, jobs, remaining, outputs, n_jobs,
                                token, blob, slot, attempt, fault)
            if lost and pool.heal():
                recovery["pool_restarts"] += 1
            remaining = lost
            attempt += 1
        return outputs, recovery
    finally:
        stop_watching.set()
        if watcher is not None:
            watcher.join()
        if slot >= 0:
            pool.release_slot(slot)


def run_hybrid_partitions(
    catalog,
    requests: Sequence,
    n_jobs: int,
    time_budget: Optional[float] = None,
    cancel=None,
    pool: Optional[MinerPool] = None,
    fault: Optional[FaultPlan] = None,
) -> tuple[list, dict]:
    """Fan hybrid partition jobs over the warm miner pool.

    ``catalog`` is the run's shared
    :class:`~repro.core.hybrid.PartitionCatalog` (pickled once, like a
    dataset payload); each request carries its own partition rows.  The
    jobs are independent whole-dataset mines, so they ride the exact
    supervision the row shards get: slot-bridged ``time_budget`` /
    ``cancel``, crash retries on a healed pool, and lossless serial
    degradation past the retry cap.  Returns ``(outputs, recovery)`` in
    request order, each output ``(payload, stats)`` from
    :func:`repro.core.hybrid.mine_hybrid_partition`.
    """
    jobs = [("hybrid", request, 0) for request in requests]
    return _execute(
        catalog,
        jobs,
        n_jobs,
        time_budget=time_budget,
        cancel=cancel,
        pool=pool,
        fault=fault,
    )


def _merge_topk(
    dataset: "DiscretizedDataset",
    request: MineRequest,
    shard_outputs: Sequence[tuple[list, MinerStats]],
    degraded: bool = False,
) -> TopkResult:
    """Fold per-shard top-k lists into the exact serial result.

    ``TopKList`` breaks confidence/support ties canonically by row set,
    so the merge is order-independent: every shard's local top-k
    contains the members of the global top-k it enumerated, and offering
    their union reconstructs the serial lists exactly.
    """
    view = MiningView.cached(
        dataset, request.consequent, request.minsup, backend=request.backend
    )
    policy = TopkPolicy(
        view,
        request.k,
        initialize_single_items=request.initialize_single_items,
        dynamic_minsup=False,
        use_topk_pruning=request.use_topk_pruning,
    )
    for lists, _stats in shard_outputs:
        for position, groups in enumerate(lists):
            target = policy.lists[position]
            for group in groups:
                target.offer(group)
    stats = merge_stats([stats for _lists, stats in shard_outputs], request.engine)
    stats.degraded = stats.degraded or degraded
    return TopkResult(
        per_row=policy.finalize(),
        consequent=request.consequent,
        minsup=request.minsup,
        k=request.k,
        stats=stats,
    )


def mine_topk_sharded(
    dataset: "DiscretizedDataset",
    requests: Sequence[MineRequest],
    n_jobs: Optional[int] = None,
    time_budget: Optional[float] = None,
    cancel=None,
    fault: Optional[FaultPlan] = None,
) -> list[TopkResult]:
    """Mine several top-k requests at once, pooling their shards.

    This is the engine behind per-class classifier parallelism: RCBT
    needs one mine per class, and pooling all classes' shards into a
    single executor keeps every worker busy even when one class's tree
    is much larger than another's.

    ``n_jobs="auto"`` lets the planner pick serial or all-cores from the
    estimated total work of the batch (:func:`estimate_topk_work`).

    Returns one :class:`TopkResult` per request, in request order; each
    is bit-identical to the corresponding serial :func:`mine_topk` call.
    That equality holds even across worker crashes: lost shards are
    retried on a healed pool and, past the retry cap, mined serially in
    this process (``stats.degraded`` marks such runs).  ``fault`` is the
    deterministic fault-injection hook used by the tests and the audit
    oracle; it never applies to the serial paths.
    """
    if n_jobs == AUTO_JOBS:
        total_units = sum(
            estimate_topk_work(
                MiningView.cached(dataset, request.consequent, request.minsup,
                                  backend=request.backend),
                request.k,
            )
            for request in requests
        )
        n_workers = plan_auto_workers(total_units, _AUTO_TOPK_SERIAL_UNITS)
    else:
        n_workers = resolve_n_jobs(n_jobs)
    if n_workers <= 1:
        from .core.topk_miner import mine_topk

        return [
            mine_topk(
                dataset,
                request.consequent,
                request.minsup,
                k=request.k,
                engine=request.engine,
                initialize_single_items=request.initialize_single_items,
                dynamic_minsup=request.dynamic_minsup,
                use_topk_pruning=request.use_topk_pruning,
                node_budget=request.node_budget,
                time_budget=time_budget,
                cancel=cancel,
                backend=request.backend,
            )
            for request in requests
        ]
    jobs: list[tuple[str, object, int]] = []
    spans: list[tuple[int, int]] = []
    for request in requests:
        view = MiningView.cached(dataset, request.consequent, request.minsup,
                                 backend=request.backend)
        shards = plan_shards(view.n_rows, n_workers)
        spans.append((len(jobs), len(jobs) + len(shards)))
        jobs.extend(("topk", request, mask) for mask in shards)
    outputs, recovery = _execute(
        dataset, jobs, n_workers, time_budget, cancel, fault=fault
    )
    results = [
        _merge_topk(dataset, request, outputs[start:stop],
                    degraded=recovery["degraded"])
        for request, (start, stop) in zip(requests, spans)
    ]
    # Under REPRO_CHECK=1 the merged results are audited exactly like
    # serial ones (no-op otherwise); this is the parallel counterpart of
    # the hook at the end of mine_topk.
    for result in results:
        maybe_check_result(dataset, result)
    return results


def mine_topk_parallel(
    dataset: "DiscretizedDataset",
    consequent: int,
    minsup: int,
    k: int = 1,
    engine: str = "bitset",
    initialize_single_items: bool = True,
    dynamic_minsup: bool = True,
    use_topk_pruning: bool = True,
    node_budget: Optional[int] = None,
    time_budget: Optional[float] = None,
    cancel=None,
    n_jobs: Optional[int] = None,
    fault: Optional[FaultPlan] = None,
    backend=None,
) -> TopkResult:
    """Parallel :func:`~repro.core.topk_miner.mine_topk` — same signature
    plus ``n_jobs`` (``"auto"`` allowed) and the ``fault`` injection
    hook, bit-identical output.  ``backend`` is resolved here (name, env
    or default) and pinned into the request so every worker uses the
    parent's choice."""
    request = MineRequest(
        consequent=consequent,
        minsup=minsup,
        k=k,
        engine=engine,
        initialize_single_items=initialize_single_items,
        dynamic_minsup=dynamic_minsup,
        use_topk_pruning=use_topk_pruning,
        node_budget=node_budget,
        backend=resolve_backend(backend, n_rows=dataset.n_rows).name,
    )
    return mine_topk_sharded(
        dataset, [request], n_jobs=n_jobs, time_budget=time_budget,
        cancel=cancel, fault=fault,
    )[0]


def mine_farmer_parallel(
    dataset: "DiscretizedDataset",
    consequent: int,
    minsup: int,
    minconf: float = 0.0,
    engine: str = "table",
    node_budget: Optional[int] = None,
    time_budget: Optional[float] = None,
    max_groups: Optional[int] = None,
    min_chi_square: float = 0.0,
    n_jobs: Optional[int] = None,
    cancel=None,
    fault: Optional[FaultPlan] = None,
    backend=None,
) -> FarmerResult:
    """Parallel :func:`~repro.baselines.farmer.mine_farmer`.

    FARMER's thresholds are static, so shards are independent and the
    merge is a concatenation in ascending shard order — exactly the
    serial emission (DFS) order.  ``max_groups`` caps each shard, and the
    merged list is truncated to the serial stopping point.
    ``n_jobs="auto"`` plans from :func:`estimate_farmer_work`.
    """
    backend_name = resolve_backend(
        backend, n_rows=dataset.n_rows, task="farmer"
    ).name
    if n_jobs == AUTO_JOBS:
        view = MiningView.cached(dataset, consequent, minsup,
                                 backend=backend_name)
        n_workers = plan_auto_workers(
            estimate_farmer_work(view), _AUTO_FARMER_SERIAL_UNITS
        )
    else:
        n_workers = resolve_n_jobs(n_jobs)
    if n_workers <= 1:
        from .baselines.farmer import mine_farmer

        return mine_farmer(
            dataset,
            consequent,
            minsup,
            minconf=minconf,
            engine=engine,
            node_budget=node_budget,
            time_budget=time_budget,
            max_groups=max_groups,
            min_chi_square=min_chi_square,
            backend=backend_name,
        )
    request = FarmerRequest(
        consequent=consequent,
        minsup=minsup,
        minconf=minconf,
        engine=engine,
        node_budget=node_budget,
        max_groups=max_groups,
        min_chi_square=min_chi_square,
        backend=backend_name,
    )
    view = MiningView.cached(dataset, consequent, minsup, backend=backend_name)
    shards = plan_shards(view.n_rows, n_workers)
    jobs = [("farmer", request, mask) for mask in shards]
    outputs, recovery = _execute(
        dataset, jobs, n_workers, time_budget, cancel, fault=fault
    )
    merged: list = []
    for groups, _stats in outputs:
        merged.extend(groups)
    stats = merge_stats([stats for _groups, stats in outputs], engine)
    stats.degraded = stats.degraded or recovery["degraded"]
    if max_groups is not None and len(merged) > max_groups:
        # Serial FARMER raises after emitting one group past the cap; keep
        # the identical prefix of the DFS emission order.
        merged = merged[: max_groups + 1]
        stats.completed = False
    policy = FarmerPolicy(
        view, minconf=minconf, max_groups=None, min_chi_square=min_chi_square
    )
    policy.groups = merged
    return FarmerResult(
        groups=policy.finalize(),
        consequent=consequent,
        minsup=minsup,
        minconf=minconf,
        stats=stats,
    )


def parallel_map(
    fn: Callable,
    items: Iterable,
    n_jobs: Optional[int] = None,
) -> list:
    """Order-preserving process map for coarse-grained work (e.g. CV folds).

    ``fn`` must be picklable (a module-level function).  With one worker
    (or one item) the map runs inline, so callers can pass user-facing
    ``n_jobs`` straight through (``"auto"`` maps to all cores here — the
    planner's cost model only covers mining).  Runs on the warm
    :class:`MinerPool`, so a CV sweep shares workers with the miners.
    """
    work = list(items)
    if n_jobs == AUTO_JOBS:
        n_jobs = None
    n_workers = min(resolve_n_jobs(n_jobs), max(1, len(work)))
    if n_workers <= 1 or len(work) <= 1:
        return [fn(item) for item in work]
    executor = get_pool().executor(n_workers)
    return list(executor.map(fn, work))


def results_equal(a: TopkResult, b: TopkResult) -> bool:
    """True iff two mining results are bit-identical.

    Compares the full per-row structure — row ids, list order, and every
    group's antecedent, consequent, row set, support and confidence.
    Used by the bench harness and tests to assert the parallel backend
    reproduces the serial result exactly.
    """
    if a.per_row.keys() != b.per_row.keys():
        return False
    for row, groups in a.per_row.items():
        other = b.per_row[row]
        if len(groups) != len(other):
            return False
        for left, right in zip(groups, other):
            if (
                left.antecedent != right.antecedent
                or left.consequent != right.consequent
                or left.row_set != right.row_set
                or left.support != right.support
                or left.confidence != right.confidence
            ):
                return False
    return True
