"""Tests for the hybrid column-then-row miner (Section 8 extension)."""

import pytest

from repro.core.hybrid import mine_topk_hybrid
from repro.core.topk_miner import mine_topk
from repro.data.synthetic import random_discretized_dataset


def profiles(per_row):
    return {
        row: [(g.confidence, g.support) for g in groups]
        for row, groups in per_row.items()
    }


class TestEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_direct_miner(self, seed):
        ds = random_discretized_dataset(10, 9, density=0.45, seed=seed)
        for consequent in (0, 1):
            for k in (1, 3):
                direct = mine_topk(ds, consequent, 1, k)
                hybrid = mine_topk_hybrid(ds, consequent, 1, k)
                assert profiles(hybrid.per_row) == profiles(direct.per_row)

    def test_figure1(self, figure1):
        direct = mine_topk(figure1, 1, minsup=2, k=1)
        hybrid = mine_topk_hybrid(figure1, 1, minsup=2, k=1)
        assert profiles(hybrid.per_row) == profiles(direct.per_row)

    def test_minsup_respected(self, small_random):
        result = mine_topk_hybrid(small_random, 1, minsup=3, k=2)
        for groups in result.per_row.values():
            assert all(g.support >= 3 for g in groups)

    def test_groups_are_closed_and_exact(self, small_random):
        ds = small_random
        result = mine_topk_hybrid(ds, 1, minsup=1, k=2)
        for row, groups in result.per_row.items():
            for group in groups:
                assert ds.support_set(group.antecedent) == group.row_set
                assert ds.common_items(group.row_set) == group.antecedent
                assert group.row_set >> row & 1


class TestStats:
    def test_partition_stats(self, small_random):
        result = mine_topk_hybrid(small_random, 1, minsup=1, k=1)
        stats = result.hybrid_stats
        assert stats.n_partitions >= 1
        assert stats.max_partition_rows <= small_random.n_rows
        assert stats.completed
        assert result.stats.engine == "hybrid/bitset"

    def test_partition_budget_marks_incomplete(self, small_random):
        result = mine_topk_hybrid(
            small_random, 1, minsup=1, k=5, node_budget_per_partition=1
        )
        # With one node per partition the run is necessarily truncated.
        assert not result.stats.completed

    def test_tall_dataset(self):
        ds = random_discretized_dataset(30, 12, density=0.35, seed=44)
        direct = mine_topk(ds, 1, minsup=2, k=2)
        hybrid = mine_topk_hybrid(ds, 1, minsup=2, k=2)
        assert profiles(hybrid.per_row) == profiles(direct.per_row)


class TestDiskSpill:
    def test_spill_matches_in_memory(self, tmp_path, small_random):
        in_memory = mine_topk_hybrid(small_random, 1, minsup=1, k=2)
        spilled = mine_topk_hybrid(
            small_random, 1, minsup=1, k=2, spill_dir=str(tmp_path)
        )
        assert profiles(spilled.per_row) == profiles(in_memory.per_row)
        assert list(tmp_path.glob("partition_*.json"))
