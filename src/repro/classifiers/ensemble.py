"""Bagging and boosting over the C4.5-style tree (the "C4.5 family").

Table 2 compares single tree, bagging and boosting as implemented in
Weka; these are from-scratch equivalents:

* :class:`BaggingTrees` — bootstrap-resampled trees with majority vote;
* :class:`AdaBoostTrees` — AdaBoost.M1 with weighted training of the
  base tree and log-odds voting weights, stopping early when a round's
  weighted error hits 0 or exceeds 1/2.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from .base import NumericClassifier
from .tree import DecisionTreeC45

__all__ = ["BaggingTrees", "AdaBoostTrees"]


class BaggingTrees(NumericClassifier):
    """Bootstrap aggregation of gain-ratio trees.

    Args:
        n_estimators: number of bootstrap rounds.
        max_depth: depth limit passed to each tree.
        seed: RNG seed for the bootstrap draws.
    """

    def __init__(
        self,
        n_estimators: int = 10,
        max_depth: Optional[int] = None,
        seed: int = 0,
    ) -> None:
        if n_estimators < 1:
            raise ValueError(f"n_estimators must be >= 1, got {n_estimators}")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.seed = seed
        self.estimators_: list[DecisionTreeC45] = []
        self.n_classes_: int = 0

    def fit(self, X: np.ndarray, y: Sequence[int]) -> "BaggingTrees":
        """Fit one tree per bootstrap resample."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=int)
        rng = np.random.default_rng(self.seed)
        self.n_classes_ = int(y.max()) + 1 if len(y) else 1
        self.estimators_ = []
        n = len(y)
        for round_index in range(self.n_estimators):
            sample = rng.integers(0, n, size=n)
            tree = DecisionTreeC45(
                max_depth=self.max_depth, seed=self.seed + round_index
            )
            tree.fit(X[sample], y[sample])
            self.estimators_.append(tree)
        self._fitted = True
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted()
        votes = np.zeros((len(X), self.n_classes_))
        for tree in self.estimators_:
            predictions = tree.predict(X)
            votes[np.arange(len(X)), predictions] += 1.0
        return votes.argmax(axis=1)


class AdaBoostTrees(NumericClassifier):
    """AdaBoost.M1 over weight-aware gain-ratio trees.

    Args:
        n_estimators: maximum boosting rounds.
        max_depth: depth limit of each base tree (shallow trees boost
            best; the default 3 mirrors boosted-C4.5 practice on tiny
            sample counts).
        seed: RNG seed (tree feature subsampling only).
    """

    def __init__(
        self, n_estimators: int = 10, max_depth: Optional[int] = 3, seed: int = 0
    ) -> None:
        if n_estimators < 1:
            raise ValueError(f"n_estimators must be >= 1, got {n_estimators}")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.seed = seed
        self.estimators_: list[DecisionTreeC45] = []
        self.alphas_: list[float] = []
        self.n_classes_: int = 0

    def fit(self, X: np.ndarray, y: Sequence[int]) -> "AdaBoostTrees":
        """Run AdaBoost.M1 rounds with weighted tree training."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=int)
        n = len(y)
        self.n_classes_ = int(y.max()) + 1 if n else 1
        self.estimators_ = []
        self.alphas_ = []
        weights = np.full(n, 1.0 / n) if n else np.array([])
        for round_index in range(self.n_estimators):
            tree = DecisionTreeC45(
                max_depth=self.max_depth, seed=self.seed + round_index
            )
            tree.fit(X, y, sample_weight=weights * n)
            predictions = tree.predict(X)
            wrong = predictions != y
            error = float(weights[wrong].sum())
            if error >= 0.5:
                if not self.estimators_:
                    # Keep one weak learner so predict() is defined.
                    self.estimators_.append(tree)
                    self.alphas_.append(1.0)
                break
            self.estimators_.append(tree)
            if error <= 0.0:
                self.alphas_.append(10.0)  # effectively a perfect voter
                break
            alpha = 0.5 * math.log((1.0 - error) / error)
            self.alphas_.append(alpha)
            weights = weights * np.exp(np.where(wrong, alpha, -alpha))
            weights /= weights.sum()
        self._fitted = True
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted()
        votes = np.zeros((len(X), self.n_classes_))
        for alpha, tree in zip(self.alphas_, self.estimators_):
            predictions = tree.predict(X)
            votes[np.arange(len(X)), predictions] += alpha
        return votes.argmax(axis=1)
