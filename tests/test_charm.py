"""Tests for the CHARM column-enumeration baseline."""

import pytest

from repro.baselines import mine_charm, naive_farmer
from repro.data.synthetic import random_discretized_dataset


def keys(groups):
    return {
        (tuple(sorted(g.antecedent)), g.row_set, g.support,
         round(g.confidence, 9))
        for g in groups
    }


class TestAgainstOracle:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("use_diffsets", (True, False))
    def test_matches_oracle(self, seed, use_diffsets):
        ds = random_discretized_dataset(9, 8, density=0.45, seed=seed)
        for minsup in (1, 2):
            expected = keys(naive_farmer(ds, 1, minsup))
            actual = keys(
                mine_charm(ds, 1, minsup, use_diffsets=use_diffsets).groups
            )
            assert actual == expected

    def test_diffsets_equal_tidsets(self, small_random):
        with_diff = keys(mine_charm(small_random, 1, 1).groups)
        without = keys(
            mine_charm(small_random, 1, 1, use_diffsets=False).groups
        )
        assert with_diff == without

    def test_other_consequent(self, small_random):
        expected = keys(naive_farmer(small_random, 0, 2))
        assert keys(mine_charm(small_random, 0, 2).groups) == expected


class TestClosedness:
    @pytest.mark.parametrize("seed", range(4))
    def test_outputs_are_closed(self, seed):
        ds = random_discretized_dataset(9, 8, density=0.5, seed=seed)
        for group in mine_charm(ds, 1, 1).groups:
            assert ds.support_set(group.antecedent) == group.row_set
            # No emitted itemset subsumes another with the same rows.
        row_sets = [g.row_set for g in mine_charm(ds, 1, 1).groups]
        assert len(row_sets) == len(set(row_sets))


class TestBudget:
    def test_budget_truncates(self, small_random):
        result = mine_charm(small_random, 1, 1, node_budget=2)
        assert not result.completed
        full = mine_charm(small_random, 1, 1)
        assert full.completed
        assert result.nodes_visited <= full.nodes_visited

    def test_metadata(self, small_random):
        result = mine_charm(small_random, 1, 2)
        assert result.consequent == 1
        assert result.minsup == 2
        assert result.elapsed_seconds >= 0.0
