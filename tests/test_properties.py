"""Property-based tests of the Galois connection and miner invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitset import from_indices, is_subset, popcount
from repro.core.topk_miner import mine_topk
from repro.data.dataset import DiscretizedDataset, Item


@st.composite
def datasets(draw):
    n_rows = draw(st.integers(3, 10))
    n_items = draw(st.integers(3, 9))
    rows = [
        frozenset(
            draw(st.sets(st.integers(0, n_items - 1), min_size=1,
                         max_size=n_items))
        )
        for _ in range(n_rows)
    ]
    labels = draw(
        st.lists(st.integers(0, 1), min_size=n_rows, max_size=n_rows).filter(
            lambda ls: 0 in ls and 1 in ls
        )
    )
    items = [
        Item(i, i, f"g{i}", float("-inf"), float("inf"))
        for i in range(n_items)
    ]
    return DiscretizedDataset(rows, labels, items)


@st.composite
def dataset_and_itemset(draw):
    ds = draw(datasets())
    itemset = draw(
        st.sets(st.integers(0, ds.n_items - 1), min_size=1, max_size=4)
    )
    return ds, frozenset(itemset)


@st.composite
def dataset_and_rowset(draw):
    ds = draw(datasets())
    rows = draw(
        st.sets(st.integers(0, ds.n_rows - 1), min_size=1, max_size=4)
    )
    return ds, from_indices(rows)


class TestGaloisConnection:
    @given(dataset_and_itemset())
    @settings(max_examples=80, deadline=None)
    def test_extensive_on_items(self, payload):
        """A ⊆ I(R(A))."""
        ds, itemset = payload
        assert itemset <= ds.common_items(ds.support_set(itemset)) or not \
            ds.support_set(itemset)

    @given(dataset_and_rowset())
    @settings(max_examples=80, deadline=None)
    def test_extensive_on_rows(self, payload):
        """X ⊆ R(I(X)) (when I(X) is non-empty)."""
        ds, row_bits = payload
        items = ds.common_items(row_bits)
        if items:
            assert is_subset(row_bits, ds.support_set(items))

    @given(dataset_and_itemset())
    @settings(max_examples=80, deadline=None)
    def test_closure_idempotent(self, payload):
        """I(R(I(R(A)))) == I(R(A))."""
        ds, itemset = payload
        rows = ds.support_set(itemset)
        closed = ds.common_items(rows)
        if closed:
            assert ds.common_items(ds.support_set(closed)) == closed

    @given(dataset_and_itemset())
    @settings(max_examples=80, deadline=None)
    def test_antitone(self, payload):
        """Adding items can only shrink the support set."""
        ds, itemset = payload
        rows_all = ds.support_set(itemset)
        for item in itemset:
            rows_smaller = ds.support_set(itemset - {item})
            assert is_subset(rows_all, rows_smaller)


class TestMinerInvariants:
    @given(datasets(), st.integers(1, 3))
    @settings(max_examples=50, deadline=None)
    def test_topk_lists_sorted_and_bounded(self, ds, k):
        result = mine_topk(ds, 1, minsup=1, k=k)
        for groups in result.per_row.values():
            assert len(groups) <= k
            stats = [(g.confidence, g.support) for g in groups]
            assert stats == sorted(stats, reverse=True)

    @given(datasets())
    @settings(max_examples=50, deadline=None)
    def test_topk_groups_cover_their_row(self, ds):
        result = mine_topk(ds, 1, minsup=1, k=2)
        for row, groups in result.per_row.items():
            for group in groups:
                assert group.row_set >> row & 1
                assert group.antecedent <= ds.rows[row]

    @given(datasets(), st.integers(1, 3))
    @settings(max_examples=50, deadline=None)
    def test_support_counts_exact(self, ds, minsup):
        result = mine_topk(ds, 1, minsup=minsup, k=2)
        mask = ds.class_mask(1)
        for groups in result.per_row.values():
            for group in groups:
                assert group.support == popcount(group.row_set & mask)
                assert group.support >= minsup
